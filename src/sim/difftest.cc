#include "sim/difftest.h"

#include <sstream>

#include "sim/elaborate.h"

namespace cirfix::sim {

namespace {

struct RunOutcome
{
    Trace trace;
    Scheduler::Status status = Scheduler::Status::Idle;
    CompiledStats stats;
};

RunOutcome
runOnce(const std::shared_ptr<const verilog::SourceFile> &file,
        const std::string &top, const ProbeConfig &probe,
        const RunLimits &limits, SimBackend backend)
{
    SimGuards guards;
    guards.backend = backend;
    auto design = elaborate(file, top, guards);
    TraceRecorder rec(*design, probe);
    RunOutcome out;
    out.status = design->run(limits).status;
    out.trace = rec.takeTrace();
    out.stats = design->compiledStats();
    return out;
}

std::string
bitString(const LogicVec &v)
{
    std::string s;
    for (int i = v.width() - 1; i >= 0; --i) {
        switch (v.bit(i)) {
          case Bit::Zero: s += '0'; break;
          case Bit::One: s += '1'; break;
          case Bit::X: s += 'x'; break;
          case Bit::Z: s += 'z'; break;
        }
    }
    return s;
}

const char *
statusName(Scheduler::Status s)
{
    switch (s) {
      case Scheduler::Status::Finished: return "Finished";
      case Scheduler::Status::Idle: return "Idle";
      case Scheduler::Status::MaxTime: return "MaxTime";
      case Scheduler::Status::Runaway: return "Runaway";
      case Scheduler::Status::Deadline: return "Deadline";
      case Scheduler::Status::Crashed: return "Crashed";
      case Scheduler::Status::EarlyStop: return "EarlyStop";
    }
    return "?";
}

/** Abnormal-termination class: both backends must agree on whether the
 *  run ended in a pathology, but Finished/Idle/MaxTime are equivalent
 *  "real result" endings whose exact member may differ. */
bool
pathological(Scheduler::Status s)
{
    return s == Scheduler::Status::Runaway ||
           s == Scheduler::Status::Deadline ||
           s == Scheduler::Status::Crashed;
}

} // namespace

DiffResult
diffBackends(std::shared_ptr<const verilog::SourceFile> file,
             const std::string &top, const ProbeConfig &probe,
             const RunLimits &limits)
{
    RunOutcome ev = runOnce(file, top, probe, limits, SimBackend::Event);
    RunOutcome cp =
        runOnce(file, top, probe, limits, SimBackend::Compiled);

    DiffResult r;
    r.eventTrace = std::move(ev.trace);
    r.compiledTrace = std::move(cp.trace);
    r.stats = cp.stats;

    std::ostringstream why;
    auto fail = [&](const std::string &what) {
        why << "top=" << top << " " << what
            << " [event=" << statusName(ev.status)
            << " compiled=" << statusName(cp.status)
            << " modules compiled=" << cp.stats.modulesCompiled
            << " fallback=" << cp.stats.modulesFallback
            << " 4-state bails=" << cp.stats.fourStateFallbacks << "]";
        r.match = false;
        r.mismatch = why.str();
    };

    if (pathological(ev.status) != pathological(cp.status)) {
        fail("termination class diverged");
        return r;
    }

    const Trace &a = r.eventTrace;
    const Trace &b = r.compiledTrace;
    if (a.vars() != b.vars()) {
        fail("probe column sets diverged");
        return r;
    }
    size_t n = std::min(a.rows().size(), b.rows().size());
    for (size_t i = 0; i < n; ++i) {
        const Trace::Row &ra = a.rows()[i];
        const Trace::Row &rb = b.rows()[i];
        if (ra.time != rb.time) {
            fail("sample " + std::to_string(i) + " time event=" +
                 std::to_string(ra.time) +
                 " compiled=" + std::to_string(rb.time));
            return r;
        }
        for (size_t c = 0; c < ra.values.size(); ++c) {
            const LogicVec &va = ra.values[c];
            const LogicVec &vb = rb.values[c];
            if (va.width() == vb.width() && va.identical(vb))
                continue;
            // Minimized reproducer: the exact first diverging sample.
            fail("first mismatch at t=" + std::to_string(ra.time) +
                 " signal=" + a.vars()[c] + " event=" + bitString(va) +
                 " compiled=" + bitString(vb) + " (row " +
                 std::to_string(i) + ")");
            return r;
        }
    }
    if (a.rows().size() != b.rows().size()) {
        fail("row counts diverged: event=" +
             std::to_string(a.rows().size()) +
             " compiled=" + std::to_string(b.rows().size()));
        return r;
    }
    r.match = true;
    return r;
}

} // namespace cirfix::sim
