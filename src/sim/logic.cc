#include "sim/logic.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace cirfix::sim {

namespace {
thread_local uint64_t g_logic_heap_allocs = 0;
} // namespace

uint64_t
logicHeapAllocs()
{
    return g_logic_heap_allocs;
}

void
WordStore::assign(size_t n, uint64_t fill)
{
    if (n > 1 && n != n_) {
        release();
        heap_ = new uint64_t[n];
        ++g_logic_heap_allocs;
    } else if (n <= 1 && heap_) {
        release();
    }
    n_ = n;
    uint64_t *d = data();
    for (size_t i = 0; i < n; ++i)
        d[i] = fill;
}

bool
WordStore::operator==(const WordStore &o) const
{
    if (n_ != o.n_)
        return false;
    const uint64_t *a = data(), *b = o.data();
    for (size_t i = 0; i < n_; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

void
WordStore::copyFrom(const WordStore &o)
{
    n_ = o.n_;
    if (o.heap_) {
        heap_ = new uint64_t[n_];
        ++g_logic_heap_allocs;
        for (size_t i = 0; i < n_; ++i)
            heap_[i] = o.heap_[i];
    } else {
        heap_ = nullptr;
        inline0_ = o.inline0_;
    }
}

void
WordStore::moveFrom(WordStore &o) noexcept
{
    n_ = o.n_;
    heap_ = o.heap_;
    inline0_ = o.inline0_;
    o.heap_ = nullptr;
    o.n_ = 0;
}

void
WordStore::release()
{
    delete[] heap_;
    heap_ = nullptr;
}

char
bitChar(Bit b)
{
    switch (b) {
      case Bit::Zero: return '0';
      case Bit::One: return '1';
      case Bit::Z: return 'z';
      case Bit::X: return 'x';
    }
    return '?';
}

Bit
charBit(char c)
{
    switch (c) {
      case '0': return Bit::Zero;
      case '1': return Bit::One;
      case 'x': case 'X': return Bit::X;
      case 'z': case 'Z': case '?': return Bit::Z;
      default:
        throw std::invalid_argument(std::string("bad logic char: ") + c);
    }
}

LogicVec::LogicVec(int width, Bit fill)
    : width_(width)
{
    if (width <= 0)
        throw std::invalid_argument("LogicVec width must be positive");
    int nw = (width + 63) / 64;
    uint64_t a = (static_cast<uint8_t>(fill) & 1) ? ~0ull : 0ull;
    uint64_t b = (static_cast<uint8_t>(fill) & 2) ? ~0ull : 0ull;
    aval_.assign(nw, a);
    bval_.assign(nw, b);
    maskTop();
}

LogicVec::LogicVec(int width, uint64_t value)
    : width_(width)
{
    if (width <= 0)
        throw std::invalid_argument("LogicVec width must be positive");
    int nw = (width + 63) / 64;
    aval_.assign(nw, 0);
    bval_.assign(nw, 0);
    aval_[0] = value;
    maskTop();
}

LogicVec
LogicVec::fromString(const std::string &bits)
{
    if (bits.empty())
        throw std::invalid_argument("empty bit string");
    LogicVec v(static_cast<int>(bits.size()), Bit::Zero);
    for (size_t i = 0; i < bits.size(); ++i)
        v.setBit(static_cast<int>(bits.size() - 1 - i), charBit(bits[i]));
    return v;
}

void
LogicVec::maskTop()
{
    int rem = width_ % 64;
    if (rem != 0) {
        uint64_t mask = (1ull << rem) - 1;
        aval_.back() &= mask;
        bval_.back() &= mask;
    }
}

Bit
LogicVec::bit(int i) const
{
    if (i < 0 || i >= width_)
        return Bit::X;
    uint64_t a = (aval_[i / 64] >> (i % 64)) & 1;
    uint64_t b = (bval_[i / 64] >> (i % 64)) & 1;
    return static_cast<Bit>(a | (b << 1));
}

void
LogicVec::setBit(int i, Bit b)
{
    if (i < 0 || i >= width_)
        return;
    uint64_t mask = 1ull << (i % 64);
    uint8_t enc = static_cast<uint8_t>(b);
    if (enc & 1)
        aval_[i / 64] |= mask;
    else
        aval_[i / 64] &= ~mask;
    if (enc & 2)
        bval_[i / 64] |= mask;
    else
        bval_[i / 64] &= ~mask;
}

bool
LogicVec::hasUnknown() const
{
    for (uint64_t w : bval_)
        if (w != 0)
            return true;
    return false;
}

bool
LogicVec::isAllZero() const
{
    for (int i = 0; i < words(); ++i)
        if (aval_[i] != 0 || bval_[i] != 0)
            return false;
    return true;
}

bool
LogicVec::hasOne() const
{
    for (int i = 0; i < words(); ++i)
        if ((aval_[i] & ~bval_[i]) != 0)
            return true;
    return false;
}

uint64_t
LogicVec::toUint64() const
{
    return aval_[0] & ~bval_[0];
}

std::string
LogicVec::toString() const
{
    std::string s;
    s.reserve(width_);
    for (int i = width_ - 1; i >= 0; --i)
        s.push_back(bitChar(bit(i)));
    return s;
}

std::string
LogicVec::toDecimalString() const
{
    if (hasUnknown())
        return toString();
    // Repeated division by 10 over the word array.
    std::vector<uint64_t> w(aval_.begin(), aval_.end());
    std::string digits;
    auto all_zero = [&] {
        return std::all_of(w.begin(), w.end(),
                           [](uint64_t x) { return x == 0; });
    };
    if (all_zero())
        return "0";
    while (!all_zero()) {
        unsigned __int128 rem = 0;
        for (int i = static_cast<int>(w.size()) - 1; i >= 0; --i) {
            unsigned __int128 cur = (rem << 64) | w[i];
            w[i] = static_cast<uint64_t>(cur / 10);
            rem = cur % 10;
        }
        digits.push_back(static_cast<char>('0' + static_cast<int>(rem)));
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

bool
LogicVec::identical(const LogicVec &o) const
{
    return width_ == o.width_ && aval_ == o.aval_ && bval_ == o.bval_;
}

LogicVec
LogicVec::resized(int new_width) const
{
    if (new_width == width_)
        return *this;
    // Word-parallel zero-extend / truncate: bits above width_ are kept
    // zero by the maskTop invariant, so whole source words can be
    // copied and the top word re-masked for the new width.
    LogicVec r(new_width, Bit::Zero);
    int nw = std::min(r.words(), words());
    for (int i = 0; i < nw; ++i) {
        r.aval_[i] = aval_[i];
        r.bval_[i] = bval_[i];
    }
    r.maskTop();
    return r;
}

LogicVec
LogicVec::slice(int msb, int lsb) const
{
    assert(msb >= lsb);
    LogicVec r(msb - lsb + 1, Bit::Zero);
    if (lsb < 0 || msb >= width_) {
        // Partially out of range: per-bit with X fill (rare path).
        for (int i = lsb; i <= msb; ++i)
            r.setBit(i - lsb, bit(i));
        return r;
    }
    // Word-parallel funnel shift of both planes.
    int off = lsb / 64;
    int sh = lsb % 64;
    for (int i = 0; i < r.words(); ++i) {
        uint64_t a = aval_[off + i];
        uint64_t b = bval_[off + i];
        if (sh != 0) {
            a >>= sh;
            b >>= sh;
            if (off + i + 1 < words()) {
                a |= aval_[off + i + 1] << (64 - sh);
                b |= bval_[off + i + 1] << (64 - sh);
            }
        }
        r.aval_[i] = a;
        r.bval_[i] = b;
    }
    r.maskTop();
    return r;
}

void
LogicVec::writeSlice(int lsb, const LogicVec &v)
{
    for (int i = 0; i < v.width(); ++i) {
        int dst = lsb + i;
        if (dst >= 0 && dst < width_)
            setBit(dst, v.bit(i));
    }
}

LogicVec
LogicVec::bit1(bool v)
{
    return LogicVec(1, v ? Bit::One : Bit::Zero);
}

LogicVec
LogicVec::bitX()
{
    return LogicVec(1, Bit::X);
}

LogicVec
LogicVec::bitNot() const
{
    // ~0 = 1, ~1 = 0, ~x = x, ~z = x
    LogicVec r(width_, Bit::Zero);
    for (int i = 0; i < words(); ++i) {
        r.bval_[i] = bval_[i];
        r.aval_[i] = ~aval_[i] | bval_[i];
    }
    r.maskTop();
    return r;
}

namespace {

/** Pad two operands to a common width for bitwise/arith contexts. */
int
commonWidth(const LogicVec &a, const LogicVec &b)
{
    return std::max(a.width(), b.width());
}

} // namespace

LogicVec
LogicVec::bitAnd(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w), r(w, Bit::Zero);
    // Bitwise: 0 & anything = 0; 1 & 1 = 1; otherwise x.
    for (int i = 0; i < w; ++i) {
        Bit x = a.bit(i), y = b.bit(i);
        if (x == Bit::Zero || y == Bit::Zero)
            r.setBit(i, Bit::Zero);
        else if (x == Bit::One && y == Bit::One)
            r.setBit(i, Bit::One);
        else
            r.setBit(i, Bit::X);
    }
    return r;
}

LogicVec
LogicVec::bitOr(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w), r(w, Bit::Zero);
    for (int i = 0; i < w; ++i) {
        Bit x = a.bit(i), y = b.bit(i);
        if (x == Bit::One || y == Bit::One)
            r.setBit(i, Bit::One);
        else if (x == Bit::Zero && y == Bit::Zero)
            r.setBit(i, Bit::Zero);
        else
            r.setBit(i, Bit::X);
    }
    return r;
}

LogicVec
LogicVec::bitXor(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w), r(w, Bit::Zero);
    for (int i = 0; i < w; ++i) {
        Bit x = a.bit(i), y = b.bit(i);
        if (x == Bit::X || x == Bit::Z || y == Bit::X || y == Bit::Z)
            r.setBit(i, Bit::X);
        else
            r.setBit(i, (x == y) ? Bit::Zero : Bit::One);
    }
    return r;
}

LogicVec
LogicVec::bitXnor(const LogicVec &o) const
{
    return bitXor(o).bitNot();
}

LogicVec
LogicVec::add(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    if (hasUnknown() || o.hasUnknown())
        return LogicVec::xs(w);
    LogicVec a = resized(w), b = o.resized(w), r(w, Bit::Zero);
    unsigned __int128 carry = 0;
    for (int i = 0; i < a.words(); ++i) {
        unsigned __int128 s = carry;
        s += a.aval_[i];
        s += b.aval_[i];
        r.aval_[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    r.maskTop();
    return r;
}

LogicVec
LogicVec::sub(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    if (hasUnknown() || o.hasUnknown())
        return LogicVec::xs(w);
    return resized(w).add(o.resized(w).negate());
}

LogicVec
LogicVec::negate() const
{
    if (hasUnknown())
        return LogicVec::xs(width_);
    LogicVec r(width_, Bit::Zero);
    unsigned __int128 carry = 1;
    for (int i = 0; i < words(); ++i) {
        unsigned __int128 s = carry;
        s += ~aval_[i];
        r.aval_[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    r.maskTop();
    return r;
}

LogicVec
LogicVec::mul(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    if (hasUnknown() || o.hasUnknown())
        return LogicVec::xs(w);
    LogicVec a = resized(w), b = o.resized(w), r(w, Bit::Zero);
    // Schoolbook multiply over 64-bit limbs, truncated to w bits.
    int nw = a.words();
    for (int i = 0; i < nw; ++i) {
        unsigned __int128 carry = 0;
        for (int j = 0; i + j < nw; ++j) {
            unsigned __int128 cur = r.aval_[i + j];
            cur += static_cast<unsigned __int128>(a.aval_[i]) * b.aval_[j];
            cur += carry;
            r.aval_[i + j] = static_cast<uint64_t>(cur);
            carry = cur >> 64;
        }
    }
    r.maskTop();
    return r;
}

LogicVec
LogicVec::div(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    if (hasUnknown() || o.hasUnknown() || o.isAllZero())
        return LogicVec::xs(w);
    if (w <= 64)
        return LogicVec(w, toUint64() / o.toUint64());
    // Long division: shift-subtract, MSB first.
    LogicVec rem = LogicVec::zeros(w), quot = LogicVec::zeros(w);
    LogicVec a = resized(w), b = o.resized(w);
    for (int i = w - 1; i >= 0; --i) {
        rem = rem.shl(LogicVec(32, 1ull));
        rem.setBit(0, a.bit(i));
        if (rem.compareKnown(b) >= 0) {
            rem = rem.sub(b);
            quot.setBit(i, Bit::One);
        }
    }
    return quot;
}

LogicVec
LogicVec::mod(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    if (hasUnknown() || o.hasUnknown() || o.isAllZero())
        return LogicVec::xs(w);
    if (w <= 64)
        return LogicVec(w, toUint64() % o.toUint64());
    LogicVec q = div(o);
    return resized(w).sub(q.mul(o.resized(w)));
}

LogicVec
LogicVec::pow(const LogicVec &o) const
{
    if (hasUnknown() || o.hasUnknown())
        return LogicVec::xs(width_);
    LogicVec result(width_, 1ull);
    LogicVec base = *this;
    uint64_t exp = o.toUint64();
    while (exp > 0) {
        if (exp & 1)
            result = result.mul(base).resized(width_);
        base = base.mul(base).resized(width_);
        exp >>= 1;
    }
    return result;
}

LogicVec
LogicVec::shl(const LogicVec &o) const
{
    if (o.hasUnknown())
        return LogicVec::xs(width_);
    uint64_t n = o.toUint64();
    LogicVec r(width_, Bit::Zero);
    if (n >= static_cast<uint64_t>(width_))
        return r;
    for (int i = width_ - 1; i >= static_cast<int>(n); --i)
        r.setBit(i, bit(i - static_cast<int>(n)));
    return r;
}

LogicVec
LogicVec::shr(const LogicVec &o) const
{
    if (o.hasUnknown())
        return LogicVec::xs(width_);
    uint64_t n = o.toUint64();
    LogicVec r(width_, Bit::Zero);
    if (n >= static_cast<uint64_t>(width_))
        return r;
    for (int i = 0; i + static_cast<int>(n) < width_; ++i)
        r.setBit(i, bit(i + static_cast<int>(n)));
    return r;
}

int
LogicVec::compareKnown(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w);
    for (int i = a.words() - 1; i >= 0; --i) {
        if (a.aval_[i] < b.aval_[i])
            return -1;
        if (a.aval_[i] > b.aval_[i])
            return 1;
    }
    return 0;
}

LogicVec
LogicVec::lt(const LogicVec &o) const
{
    if (hasUnknown() || o.hasUnknown())
        return bitX();
    return bit1(compareKnown(o) < 0);
}

LogicVec
LogicVec::le(const LogicVec &o) const
{
    if (hasUnknown() || o.hasUnknown())
        return bitX();
    return bit1(compareKnown(o) <= 0);
}

LogicVec
LogicVec::gt(const LogicVec &o) const
{
    if (hasUnknown() || o.hasUnknown())
        return bitX();
    return bit1(compareKnown(o) > 0);
}

LogicVec
LogicVec::ge(const LogicVec &o) const
{
    if (hasUnknown() || o.hasUnknown())
        return bitX();
    return bit1(compareKnown(o) >= 0);
}

LogicVec
LogicVec::logicEq(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w);
    // A definite bit mismatch makes the result 0 even with x elsewhere.
    bool unknown = false;
    for (int i = 0; i < w; ++i) {
        Bit x = a.bit(i), y = b.bit(i);
        bool xu = (x == Bit::X || x == Bit::Z);
        bool yu = (y == Bit::X || y == Bit::Z);
        if (xu || yu)
            unknown = true;
        else if (x != y)
            return bit1(false);
    }
    return unknown ? bitX() : bit1(true);
}

LogicVec
LogicVec::logicNeq(const LogicVec &o) const
{
    return logicEq(o).logicNot();
}

LogicVec
LogicVec::caseEq(const LogicVec &o) const
{
    int w = commonWidth(*this, o);
    LogicVec a = resized(w), b = o.resized(w);
    for (int i = 0; i < w; ++i)
        if (a.bit(i) != b.bit(i))
            return bit1(false);
    return bit1(true);
}

LogicVec
LogicVec::caseNeq(const LogicVec &o) const
{
    return bit1(!caseEq(o).hasOne());
}

LogicVec
LogicVec::logicAnd(const LogicVec &o) const
{
    bool a1 = hasOne(), b1 = o.hasOne();
    bool a0 = !a1 && !hasUnknown();
    bool b0 = !b1 && !o.hasUnknown();
    if (a0 || b0)
        return bit1(false);
    if (a1 && b1)
        return bit1(true);
    return bitX();
}

LogicVec
LogicVec::logicOr(const LogicVec &o) const
{
    bool a1 = hasOne(), b1 = o.hasOne();
    bool a0 = !a1 && !hasUnknown();
    bool b0 = !b1 && !o.hasUnknown();
    if (a1 || b1)
        return bit1(true);
    if (a0 && b0)
        return bit1(false);
    return bitX();
}

LogicVec
LogicVec::logicNot() const
{
    if (hasOne())
        return bit1(false);
    if (hasUnknown())
        return bitX();
    return bit1(true);
}

LogicVec
LogicVec::reduceAnd() const
{
    bool unknown = false;
    for (int i = 0; i < width_; ++i) {
        Bit b = bit(i);
        if (b == Bit::Zero)
            return bit1(false);
        if (b != Bit::One)
            unknown = true;
    }
    return unknown ? bitX() : bit1(true);
}

LogicVec
LogicVec::reduceOr() const
{
    bool unknown = false;
    for (int i = 0; i < width_; ++i) {
        Bit b = bit(i);
        if (b == Bit::One)
            return bit1(true);
        if (b != Bit::Zero)
            unknown = true;
    }
    return unknown ? bitX() : bit1(false);
}

LogicVec
LogicVec::reduceXor() const
{
    bool parity = false;
    for (int i = 0; i < width_; ++i) {
        Bit b = bit(i);
        if (b == Bit::X || b == Bit::Z)
            return bitX();
        parity ^= (b == Bit::One);
    }
    return bit1(parity);
}

LogicVec
LogicVec::reduceNand() const
{
    return reduceAnd().logicNot();
}

LogicVec
LogicVec::reduceNor() const
{
    return reduceOr().logicNot();
}

LogicVec
LogicVec::reduceXnor() const
{
    LogicVec r = reduceXor();
    if (r.hasUnknown())
        return bitX();
    return bit1(!r.hasOne());
}

LogicVec
LogicVec::concat(const LogicVec &hi, const LogicVec &lo)
{
    LogicVec r(hi.width() + lo.width(), Bit::Zero);
    for (int i = 0; i < lo.width(); ++i)
        r.setBit(i, lo.bit(i));
    for (int i = 0; i < hi.width(); ++i)
        r.setBit(lo.width() + i, hi.bit(i));
    return r;
}

LogicVec
LogicVec::replicate(int n) const
{
    if (n <= 0)
        throw std::invalid_argument("replication count must be positive");
    LogicVec r(width_ * n, Bit::Zero);
    for (int k = 0; k < n; ++k)
        for (int i = 0; i < width_; ++i)
            r.setBit(k * width_ + i, bit(i));
    return r;
}

} // namespace cirfix::sim
