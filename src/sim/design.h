#pragma once

/**
 * @file
 * Elaborated design: the runtime object graph produced from an AST.
 *
 * Elaboration instantiates the module hierarchy starting from a top
 * module (the testbench), creating a Signal/Memory/NamedEvent for every
 * declaration, binding instance ports (by aliasing the parent signal
 * where possible), spawning a Process per initial/always block, and
 * wiring continuous assignments as change-driven re-evaluations.
 */

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.h"
#include "sim/signal.h"
#include "verilog/ast.h"

namespace cirfix::sim {

class Process;
class Design;
class CompiledModule;

/** Thrown when a design cannot be elaborated (bad widths, ports...). */
struct ElabError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Thrown when a per-evaluation memory budget is exhausted. */
struct SimOom : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Deterministic fault-injection hooks compiled into the simulator, so
 * tests can prove the repair engine degrades every failure mode to
 * worst fitness instead of dying. All counters are 1-based; 0 disables
 * the hook.
 */
struct FaultPlan
{
    /** Throw std::runtime_error at the Nth charged statement. */
    uint64_t throwAtStmt = 0;
    /**
     * From the Nth charged statement on, burn ~1 ms of wall clock per
     * statement without making progress, so only the wall-clock
     * deadline can reap the run. Requires an armed deadline
     * (RunLimits::maxWallSeconds > 0); without one the stall degrades
     * to a throw instead of hanging the process.
     */
    uint64_t stallAtStmt = 0;
    /** Throw SimOom at the Nth runtime-object allocation. */
    uint64_t failAllocAt = 0;

    bool
    any() const
    {
        return throwAtStmt != 0 || stallAtStmt != 0 || failAllocAt != 0;
    }
};

/** Which simulation engine drives the elaborated design. */
enum class SimBackend
{
    /** Coroutine-per-process event-driven interpreter (reference). */
    Event,
    /**
     * Levelized cycle-based bytecode for every DUT module inside the
     * compilable subset; modules outside it fall back to the event
     * interpreter per module. The testbench top always runs event-driven.
     */
    Compiled,
    /** Alias of Compiled today: compile what fits, interpret the rest. */
    Auto,
};

/** Per-design counters reported by the compiled backend. */
struct CompiledStats
{
    uint64_t modulesCompiled = 0;   //!< module instances running bytecode
    uint64_t modulesFallback = 0;   //!< instances kept on the interpreter
    uint64_t combItems = 0;         //!< compiled comb assigns/blocks
    uint64_t seqItems = 0;          //!< compiled edge-triggered blocks
    uint64_t twoStateEvals = 0;     //!< expressions run on the fast path
    uint64_t fourStateFallbacks = 0;//!< fast-path bails due to x/z
};

/**
 * Containment knobs installed on a Design at elaboration time (the
 * memory budget must already be charged while elaborate() allocates
 * signals).
 */
struct SimGuards
{
    /** Allocation budget in bytes (0 = unlimited). */
    uint64_t memBudgetBytes = 0;
    FaultPlan faultPlan;
    /** Simulation engine selection (see SimBackend). */
    SimBackend backend = SimBackend::Event;
};

/** A named signal plus its declared range mapping. */
struct SignalRef
{
    Signal *sig = nullptr;
    /** Declared LSB index; physical bit i holds declared index i+lsb. */
    int lsb = 0;
};

/** One instance in the elaborated hierarchy. */
struct InstanceScope
{
    std::string path;  //!< hierarchical path ("" for the top instance)
    const verilog::Module *module = nullptr;
    InstanceScope *parent = nullptr;

    std::unordered_map<std::string, SignalRef> signals;
    std::unordered_map<std::string, Memory *> memories;
    std::unordered_map<std::string, NamedEvent *> events;
    std::unordered_map<std::string, LogicVec> params;
    std::unordered_map<std::string, const verilog::FunctionDecl *>
        functions;
    std::vector<std::unique_ptr<InstanceScope>> children;

    InstanceScope *findChild(const std::string &inst_name) const;
    SignalRef findSignal(const std::string &name) const;
    Memory *findMemory(const std::string &name) const;
    NamedEvent *findEvent(const std::string &name) const;
    const verilog::FunctionDecl *
    findFunction(const std::string &name) const;
};

/** Tunable resource bounds for one simulation run. */
struct RunLimits
{
    SimTime maxTime = 1'000'000;
    uint64_t maxCallbacks = 2'000'000;
    uint64_t maxStatements = 20'000'000;
    /**
     * Wall-clock deadline for the run in seconds (0 = unlimited).
     * Layered on the statement/callback budgets: it reaps candidates
     * that burn real time without burning budget (checked in both the
     * scheduler loop and the statement path).
     */
    double maxWallSeconds = 0.0;
};

/**
 * A fully elaborated, runnable design.
 *
 * Owns the scheduler, every runtime object, and the processes. Create
 * with elaborate() (see elaborate.h), drive with run().
 */
class Design
{
  public:
    Design();
    ~Design();

    Design(const Design &) = delete;
    Design &operator=(const Design &) = delete;

    Scheduler &scheduler() { return sched_; }
    InstanceScope &top() { return *top_; }

    /** Look up "sig" or "inst.sub.sig" relative to the top instance. */
    SignalRef findSignal(const std::string &hier_path);
    InstanceScope *findScope(const std::string &hier_path);

    /** Lines produced by $display and friends during the run. */
    const std::vector<std::string> &displayLog() const { return log_; }
    void addDisplay(std::string line);

    /** Deterministic $random stream. */
    uint32_t nextRandom();
    void seedRandom(uint64_t seed) { rngState_ = seed | 1; }

    /**
     * Charge one statement execution against the budgets.
     * @throws SimAbort once the statement budget is exhausted or the
     *         wall-clock deadline has passed (runaway mutant);
     *         std::runtime_error / SimOom from fault injection.
     */
    void
    chargeStmt()
    {
        ++stmtCount_;
        if (faultArmed_)
            faultStmtHook();
        if (hasDeadline_ && (stmtCount_ & 0xFFF) == 0)
            checkDeadline();
        if (stmtBudget_ == 0)
            throw SimAbort("statement budget exhausted");
        --stmtBudget_;
    }

    /** Install containment knobs (see SimGuards); elaborate() calls
     *  this before any allocation so budgets cover elaboration too. */
    void setGuards(const SimGuards &guards);
    /** Bytes charged against the memory budget so far. */
    uint64_t memoryUsed() const { return memUsed_; }

    /** Run the simulation under the given resource limits. */
    Scheduler::RunResult run(const RunLimits &limits = RunLimits());

    // --- construction interface used by elaborate() and the probe ---

    Signal *makeSignal(const std::string &name, int width, bool is_reg);
    Memory *makeMemory(const std::string &name, int width, int64_t first,
                       int64_t last);
    NamedEvent *makeEvent(const std::string &name);
    void adoptProcess(std::unique_ptr<Process> p);
    void adoptCompiled(std::unique_ptr<CompiledModule> m);

    /** Backend requested at elaboration (SimGuards::backend). */
    SimBackend backend() const { return backend_; }
    /** Compiled-backend counters (zero under the event backend). */
    CompiledStats &compiledStats() { return cstats_; }
    const CompiledStats &compiledStats() const { return cstats_; }
    void setTop(std::unique_ptr<InstanceScope> top) { top_ = std::move(top); }
    /** Keep the (cloned) AST alive for the lifetime of the design. */
    void holdAst(std::shared_ptr<const verilog::SourceFile> ast)
    {
        ast_ = std::move(ast);
    }
    const verilog::SourceFile *ast() const { return ast_.get(); }

  private:
    /** Charge @p bytes for one runtime-object allocation; throws
     *  SimOom over budget (or on an injected allocation failure). */
    void chargeAlloc(uint64_t bytes);
    /** Cold path of chargeStmt: injected throws and stalls. */
    void faultStmtHook();
    /** Throws SimAbort (after flagging the scheduler) past deadline. */
    void checkDeadline();

    Scheduler sched_;
    std::unique_ptr<InstanceScope> top_;
    std::vector<std::unique_ptr<Signal>> signals_;
    std::vector<std::unique_ptr<Memory>> memories_;
    std::vector<std::unique_ptr<NamedEvent>> events_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<CompiledModule>> compiled_;
    SimBackend backend_ = SimBackend::Event;
    CompiledStats cstats_;
    std::vector<std::string> log_;
    std::shared_ptr<const verilog::SourceFile> ast_;
    uint64_t rngState_ = 0x2545F4914F6CDD1Dull;
    uint64_t stmtBudget_ = 20'000'000;
    uint64_t stmtCount_ = 0;
    uint64_t memBudget_ = 0;   //!< 0 = unlimited
    uint64_t memUsed_ = 0;
    uint64_t allocCount_ = 0;
    FaultPlan fault_;
    bool faultArmed_ = false;
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_;
    static constexpr size_t kMaxLogLines = 100'000;
};

} // namespace cirfix::sim
