#pragma once

/**
 * @file
 * Four-state logic values for Verilog simulation.
 *
 * Verilog models every bit as one of four states: 0, 1, x (unknown) and
 * z (high impedance). We use the conventional two-plane encoding (cf. the
 * VPI aval/bval encoding): each bit is a pair (a, b) where
 *
 *   (a=0, b=0) -> 0      (a=1, b=0) -> 1
 *   (a=0, b=1) -> z      (a=1, b=1) -> x
 *
 * so plane `b` marks "not a proper binary value" and plane `a`
 * distinguishes 0/1 (respectively z/x). All Verilog operators defined on
 * vectors (IEEE 1364-2005, clause 5) are implemented with standard
 * x/z-propagation semantics.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cirfix::sim {

/**
 * Word storage for one plane of a LogicVec with a one-word inline
 * buffer: vectors of width <= 64 — the overwhelming majority of
 * signals, ports and interpreter temporaries in the benchmark suite —
 * never touch the heap. The simulator hot path allocates LogicVec
 * temporaries for every expression evaluation and every recorded
 * sample, so this removes two global-allocator round trips per
 * temporary (see DESIGN.md, "Streaming fitness & early abort").
 *
 * The interface is the subset of std::vector<uint64_t> the logic
 * implementation uses; growth semantics are assign-only (a LogicVec
 * never resizes its planes in place).
 */
class WordStore
{
  public:
    WordStore() = default;
    WordStore(const WordStore &o) { copyFrom(o); }
    WordStore(WordStore &&o) noexcept { moveFrom(o); }
    ~WordStore() { release(); }

    WordStore &
    operator=(const WordStore &o)
    {
        if (this != &o) {
            release();
            copyFrom(o);
        }
        return *this;
    }

    WordStore &
    operator=(WordStore &&o) noexcept
    {
        if (this != &o) {
            release();
            moveFrom(o);
        }
        return *this;
    }

    /** Discard contents and hold @p n copies of @p fill. */
    void assign(size_t n, uint64_t fill);

    size_t size() const { return n_; }
    uint64_t *data() { return heap_ ? heap_ : &inline0_; }
    const uint64_t *data() const { return heap_ ? heap_ : &inline0_; }

    uint64_t &operator[](size_t i) { return data()[i]; }
    uint64_t operator[](size_t i) const { return data()[i]; }
    uint64_t &back() { return data()[n_ - 1]; }
    uint64_t back() const { return data()[n_ - 1]; }

    const uint64_t *begin() const { return data(); }
    const uint64_t *end() const { return data() + n_; }

    bool operator==(const WordStore &o) const;

  private:
    void copyFrom(const WordStore &o);
    void moveFrom(WordStore &o) noexcept;
    void release();

    size_t n_ = 0;
    uint64_t inline0_ = 0;
    uint64_t *heap_ = nullptr;
};

/**
 * Number of heap allocations WordStore has performed on this thread
 * (wide vectors only). Deterministic for a deterministic workload, so
 * the benchmark-regression gate can alarm on allocation regressions
 * without timing noise.
 */
uint64_t logicHeapAllocs();

/** One four-state logic bit. Values chosen to match the (a, b) planes. */
enum class Bit : uint8_t {
    Zero = 0,  //!< a=0 b=0
    One = 1,   //!< a=1 b=0
    Z = 2,     //!< a=0 b=1
    X = 3,     //!< a=1 b=1
};

/** Render a single bit as the canonical character 0/1/x/z. */
char bitChar(Bit b);

/** Parse one of '0','1','x','X','z','Z','?' into a Bit; '?' maps to z. */
Bit charBit(char c);

/**
 * An arbitrary-width vector of four-state bits.
 *
 * Bit 0 is the least significant bit. The vector is unsigned; the
 * benchmarks in this repository use unsigned arithmetic exclusively
 * (matching the original CirFix benchmark suite).
 */
class LogicVec
{
  public:
    /** Construct a 1-bit x value. */
    LogicVec() : LogicVec(1, Bit::X) {}

    /** Construct @p width bits all set to @p fill. */
    explicit LogicVec(int width, Bit fill = Bit::X);

    /** Construct @p width bits from the binary value @p value (2-state). */
    LogicVec(int width, uint64_t value);

    /** Build from a string of 0/1/x/z characters, MSB first. */
    static LogicVec fromString(const std::string &bits);

    /** All-zero vector of the given width. */
    static LogicVec zeros(int width) { return LogicVec(width, Bit::Zero); }
    /** All-x vector of the given width. */
    static LogicVec xs(int width) { return LogicVec(width, Bit::X); }
    /** All-z vector of the given width. */
    static LogicVec zsVec(int width) { return LogicVec(width, Bit::Z); }

    int width() const { return width_; }

    Bit bit(int i) const;
    void setBit(int i, Bit b);

    /** True iff any bit is x or z. */
    bool hasUnknown() const;

    /** True iff every bit is 0 (x/z bits make this false). */
    bool isAllZero() const;

    /** True iff at least one bit is a definite 1. */
    bool hasOne() const;

    /**
     * Verilog truthiness used by if/while/ternary conditions: a value is
     * taken as true iff it has at least one definite 1 bit. Conditions
     * that are ambiguous (no 1 but some x/z) count as false, matching
     * the behavior of `if` in event-driven simulation.
     */
    bool isTrue() const { return hasOne(); }

    /** Low 64 bits interpreted as binary; x/z bits read as 0. */
    uint64_t toUint64() const;

    /** Render MSB-first as 0/1/x/z characters. */
    std::string toString() const;

    /** Render as decimal if fully defined, else as the bit string. */
    std::string toDecimalString() const;

    /** Exact representation equality (same width and same 4-state bits). */
    bool identical(const LogicVec &o) const;

    bool operator==(const LogicVec &o) const { return identical(o); }

    /**
     * Zero-extend or truncate to @p new_width. Verilog assignment
     * semantics: truncation drops high bits, extension fills with 0.
     */
    LogicVec resized(int new_width) const;

    /** Part select [msb:lsb] (msb >= lsb); out-of-range bits read x. */
    LogicVec slice(int msb, int lsb) const;

    /** Overwrite bits [lsb .. lsb+v.width()-1] with @p v (in range only). */
    void writeSlice(int lsb, const LogicVec &v);

    // --- Verilog operators (names follow the operator they implement) ---

    /** ~a */
    LogicVec bitNot() const;
    LogicVec bitAnd(const LogicVec &o) const;  //!< a & b
    LogicVec bitOr(const LogicVec &o) const;   //!< a | b
    LogicVec bitXor(const LogicVec &o) const;  //!< a ^ b
    LogicVec bitXnor(const LogicVec &o) const; //!< a ~^ b

    LogicVec add(const LogicVec &o) const;     //!< a + b
    LogicVec sub(const LogicVec &o) const;     //!< a - b
    LogicVec mul(const LogicVec &o) const;     //!< a * b
    LogicVec div(const LogicVec &o) const;     //!< a / b (x on div-by-0)
    LogicVec mod(const LogicVec &o) const;     //!< a % b (x on mod-by-0)
    LogicVec negate() const;                   //!< -a (two's complement)
    LogicVec pow(const LogicVec &o) const;     //!< a ** b

    LogicVec shl(const LogicVec &o) const;     //!< a << b
    LogicVec shr(const LogicVec &o) const;     //!< a >> b

    /** Relational; result is a 1-bit value, x if either side unknown. */
    LogicVec lt(const LogicVec &o) const;
    LogicVec le(const LogicVec &o) const;
    LogicVec gt(const LogicVec &o) const;
    LogicVec ge(const LogicVec &o) const;

    /** Logical equality ==; 1-bit result, x if comparison is ambiguous. */
    LogicVec logicEq(const LogicVec &o) const;
    LogicVec logicNeq(const LogicVec &o) const;

    /** Case equality ===; always 0 or 1, x/z compare literally. */
    LogicVec caseEq(const LogicVec &o) const;
    LogicVec caseNeq(const LogicVec &o) const;

    /** Logical && || ! on truthiness; 1-bit result with x propagation. */
    LogicVec logicAnd(const LogicVec &o) const;
    LogicVec logicOr(const LogicVec &o) const;
    LogicVec logicNot() const;

    /** Reduction operators; 1-bit result. */
    LogicVec reduceAnd() const;
    LogicVec reduceOr() const;
    LogicVec reduceXor() const;
    LogicVec reduceNand() const;
    LogicVec reduceNor() const;
    LogicVec reduceXnor() const;

    /** {a, b}: @p hi becomes the most significant part. */
    static LogicVec concat(const LogicVec &hi, const LogicVec &lo);

    /** {n{a}} replication. */
    LogicVec replicate(int n) const;

  private:
    int width_;
    WordStore aval_;
    WordStore bval_;

    int words() const { return static_cast<int>(aval_.size()); }
    void maskTop();
    /** 1-bit helper vectors for relational/equality results. */
    static LogicVec bit1(bool v);
    static LogicVec bitX();
    /** Compare fully-defined vectors as unsigned integers: -1/0/+1. */
    int compareKnown(const LogicVec &o) const;
};

} // namespace cirfix::sim
