#pragma once

/**
 * @file
 * Design elaboration: AST -> runnable Design.
 */

#include <memory>
#include <string>

#include "sim/design.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/**
 * Elaborate @p file starting from module @p top (the testbench).
 *
 * The design keeps a shared reference to the AST: the tree must not be
 * mutated while the design is alive.
 *
 * @throws ElabError on unsupported or inconsistent structure.
 */
std::unique_ptr<Design>
elaborate(std::shared_ptr<const verilog::SourceFile> file,
          const std::string &top);

/** Convenience overload: clones @p file and elaborates the clone. */
std::unique_ptr<Design> elaborate(const verilog::SourceFile &file,
                                  const std::string &top);

} // namespace cirfix::sim
