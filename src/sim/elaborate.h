#pragma once

/**
 * @file
 * Design elaboration: AST -> runnable Design.
 */

#include <memory>
#include <string>

#include "sim/design.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/**
 * Elaborate @p file starting from module @p top (the testbench).
 *
 * The design keeps a shared reference to the AST: the tree must not be
 * mutated while the design is alive.
 *
 * @p guards installs containment knobs (memory budget, fault plan)
 * before the first runtime allocation, so elaboration itself is covered
 * by the budget.
 *
 * @throws ElabError on unsupported or inconsistent structure; SimOom if
 *         the elaborated design exceeds the memory budget.
 */
std::unique_ptr<Design>
elaborate(std::shared_ptr<const verilog::SourceFile> file,
          const std::string &top, const SimGuards &guards = {});

/** Convenience overload: clones @p file and elaborates the clone. */
std::unique_ptr<Design> elaborate(const verilog::SourceFile &file,
                                  const std::string &top,
                                  const SimGuards &guards = {});

} // namespace cirfix::sim
