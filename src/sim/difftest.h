#pragma once

/**
 * @file
 * Backend differential harness: run one design under both the
 * event-driven interpreter and the compiled cycle-based backend and
 * compare the sampled output traces bit-for-bit.
 *
 * The sampled trace (TraceRecorder rows at rising clock edges) is the
 * only simulation artifact fitness consumes, so bit-identical traces
 * prove the compiled backend cannot change any repair result. The
 * harness backs `cirfix diffsim`, the backend-equivalence CI job and
 * the compiled-backend tests.
 */

#include <memory>
#include <string>

#include "sim/design.h"
#include "sim/probe.h"
#include "sim/trace.h"
#include "verilog/ast.h"

namespace cirfix::sim {

/** Outcome of one event-vs-compiled differential run. */
struct DiffResult
{
    /** Traces (and final run status class) are bit-identical. */
    bool match = false;
    /**
     * Empty on match; otherwise a minimized reproducer: the first
     * mismatching row/column with both values, plus enough context
     * (top module, sample time, signal, run statuses) to replay it.
     */
    std::string mismatch;
    Trace eventTrace;
    Trace compiledTrace;
    /** Counters of the compiled run (fallback accounting). */
    CompiledStats stats;
};

/**
 * Elaborate @p file twice — SimBackend::Event and SimBackend::Compiled
 * — run both under @p limits, and compare the recorded traces.
 * Display-log divergence is deliberately NOT compared: mid-slot
 * $display interleaving inside a zero-delay comb cascade is
 * unobservable by fitness (see docs/verilog_subset.md).
 *
 * @throws ElabError when the design does not elaborate at all (both
 *         backends would reject it identically).
 */
DiffResult diffBackends(std::shared_ptr<const verilog::SourceFile> file,
                        const std::string &top, const ProbeConfig &probe,
                        const RunLimits &limits = {});

} // namespace cirfix::sim
