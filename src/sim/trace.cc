#include "sim/trace.h"

#include <sstream>
#include <stdexcept>

namespace cirfix::sim {

void
Trace::addRow(SimTime time, std::vector<LogicVec> values)
{
    if (!rows_.empty() && rows_.back().time == time) {
        // Re-sample at the same instant: keep the latest values.
        rows_.back().values = std::move(values);
        return;
    }
    rows_.push_back(Row{time, std::move(values)});
}

int
Trace::varIndex(const std::string &var) const
{
    for (size_t i = 0; i < vars_.size(); ++i)
        if (vars_[i] == var)
            return static_cast<int>(i);
    return -1;
}

std::optional<LogicVec>
Trace::at(SimTime time, const std::string &var) const
{
    int col = varIndex(var);
    if (col < 0)
        return std::nullopt;
    if (const Row *r = rowAt(time))
        return r->values[static_cast<size_t>(col)];
    return std::nullopt;
}

const Trace::Row *
Trace::rowAt(SimTime time) const
{
    // Rows are sorted by time; binary search.
    size_t lo = 0, hi = rows_.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (rows_[mid].time < time)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < rows_.size() && rows_[lo].time == time)
        return &rows_[lo];
    return nullptr;
}

uint64_t
Trace::totalBits() const
{
    uint64_t n = 0;
    for (auto &r : rows_)
        for (auto &v : r.values)
            n += static_cast<uint64_t>(v.width());
    return n;
}

std::string
Trace::toCsv() const
{
    std::ostringstream os;
    os << "time";
    for (auto &v : vars_)
        os << "," << v;
    os << "\n";
    for (auto &r : rows_) {
        os << r.time;
        for (auto &v : r.values)
            os << "," << v.toString();
        os << "\n";
    }
    return os.str();
}

Trace
Trace::fromCsv(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line))
        throw std::runtime_error("empty trace CSV");
    auto split = [](const std::string &s) {
        std::vector<std::string> out;
        std::string cur;
        for (char c : s) {
            if (c == ',') {
                out.push_back(cur);
                cur.clear();
            } else if (c != '\r') {
                cur.push_back(c);
            }
        }
        out.push_back(cur);
        return out;
    };
    std::vector<std::string> header = split(line);
    if (header.empty() || header[0] != "time")
        throw std::runtime_error("trace CSV must start with 'time'");
    Trace t(std::vector<std::string>(header.begin() + 1, header.end()));
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells = split(line);
        if (cells.size() != header.size())
            throw std::runtime_error("trace CSV row width mismatch");
        std::vector<LogicVec> values;
        for (size_t i = 1; i < cells.size(); ++i)
            values.push_back(LogicVec::fromString(cells[i]));
        t.addRow(std::stoull(cells[0]), std::move(values));
    }
    return t;
}

} // namespace cirfix::sim
