#pragma once

/**
 * @file
 * Value Change Dump (VCD) waveform recording.
 *
 * Real hardware debug workflows inspect waveforms; the original CirFix
 * pipeline gets them from VCS ($dumpfile/$dumpvars). This recorder
 * provides the same capability for our simulator: attach it to an
 * elaborated design before run() and it streams an IEEE 1364 §18 VCD
 * document — hierarchical scopes, per-signal identifier codes,
 * timestamped value changes — that standard viewers (GTKWave) open.
 */

#include <string>
#include <vector>

#include "sim/design.h"

namespace cirfix::sim {

/** Records value changes of design signals in VCD format. */
class VcdRecorder
{
  public:
    /**
     * Attach to every signal of @p design (all scopes).
     *
     * @param timescale Printed as the VCD timescale (default "1ns").
     */
    explicit VcdRecorder(Design &design,
                         const std::string &timescale = "1ns");

    /**
     * Attach only to the signals whose hierarchical paths are listed.
     * Unknown paths are ignored.
     */
    VcdRecorder(Design &design, const std::vector<std::string> &paths,
                const std::string &timescale = "1ns");

    /** The complete VCD document (header + all changes so far). */
    std::string document() const;

    /** Number of value changes recorded. */
    size_t changeCount() const { return changes_; }

  private:
    struct Var
    {
        std::string path;   //!< hierarchical path
        std::string code;   //!< short VCD identifier code
        int width;
    };

    void attach(Design &design, Signal *sig, const std::string &path);
    static std::string codeFor(size_t index);
    void collectScope(Design &design, InstanceScope &scope);

    std::string timescale_;
    std::vector<Var> vars_;
    std::string body_;
    SimTime lastTime_ = 0;
    bool timeEmitted_ = false;
    size_t changes_ = 0;
    Design &design_;
};

} // namespace cirfix::sim
