#pragma once

/**
 * @file
 * One repair session: everything between "a JobSpec popped off the
 * queue" and "a terminal state with a result payload".
 *
 * The session layer owns the deterministic mapping from wire-level
 * job descriptions to engine runs:
 *
 *  - engineConfigFromSpec() is the single place a JobSpec becomes an
 *    EngineConfig, so a daemon run and a direct in-process run of the
 *    same spec are bit-identical (the restart acceptance test compares
 *    exactly these two).
 *  - buildJobInputs() parses the design, derives the probe config and
 *    materializes the expected-behavior oracle (from the submitted CSV
 *    or by re-simulating the golden source under the design's own
 *    testbench, mirroring the CLI's --golden path).
 *  - runRepairJob() wires checkpointing to the job's snapshot path:
 *    if the snapshot exists the engine resume()s (daemon restart),
 *    otherwise it run()s fresh; each generation is durable before its
 *    progress event is published.
 */

#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "service/jobqueue.h"
#include "service/protocol.h"

namespace cirfix::service {

/** Parsed, simulation-ready inputs for one job. */
struct JobInputs
{
    std::shared_ptr<const verilog::SourceFile> faulty;
    sim::ProbeConfig probe;
    core::Trace oracle;
};

/** The one JobSpec -> EngineConfig mapping (no snapshot path, no
 *  callbacks; callers attach those). */
core::EngineConfig engineConfigFromSpec(const JobSpec &spec);

/** Parse + oracle materialization. @throws std::runtime_error on a
 *  design that does not parse, a missing module, or a bad oracle. */
JobInputs buildJobInputs(const JobSpec &spec);

/** Map a finished engine run to the wire result payload. */
Json resultToJson(const core::RepairResult &res);

/** How runRepairJob() ended. */
struct SessionOutcome
{
    JobState state = JobState::Failed;
    Json result;        //!< payload for Done/Canceled
    std::string error;  //!< diagnostic for Failed
};

/**
 * Execute (or resume) one job. @p snapshotPath receives a checkpoint
 * every generation; when the file already exists the run resumes from
 * it bit-identically. @p onGeneration fires after each generation's
 * checkpoint is durable; @p shouldStop is polled mid-generation. A
 * true @p shouldStop ending maps to Canceled (with the partial-run
 * counters as payload); every exception maps to Failed. Never throws.
 * @p provenance is stamped into each checkpoint (the fleet worker's
 * name) — informational only, it never changes the search.
 */
SessionOutcome
runRepairJob(const JobSpec &spec, const std::string &snapshotPath,
             const std::function<void(const core::GenerationStats &)>
                 &onGeneration,
             const std::function<bool()> &shouldStop,
             const std::string &provenance = "");

} // namespace cirfix::service
