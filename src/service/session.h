#pragma once

/**
 * @file
 * One repair session: everything between "a JobSpec popped off the
 * queue" and "a terminal state with a result payload".
 *
 * The session layer owns the deterministic mapping from wire-level
 * job descriptions to engine runs:
 *
 *  - engineConfigFromSpec() is the single place a JobSpec becomes an
 *    EngineConfig, so a daemon run and a direct in-process run of the
 *    same spec are bit-identical (the restart acceptance test compares
 *    exactly these two).
 *  - buildJobInputs() parses the design, derives the probe config and
 *    materializes the expected-behavior oracle (from the submitted CSV
 *    or by re-simulating the golden source under the design's own
 *    testbench, mirroring the CLI's --golden path).
 *  - runRepairJob() wires checkpointing to the job's snapshot path:
 *    if the snapshot exists the engine resume()s (daemon restart),
 *    otherwise it run()s fresh; each generation is durable before its
 *    progress event is published.
 */

#include <functional>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/island.h"
#include "service/jobqueue.h"
#include "service/protocol.h"

namespace cirfix::service {

/** Parsed, simulation-ready inputs for one job. */
struct JobInputs
{
    std::shared_ptr<const verilog::SourceFile> faulty;
    sim::ProbeConfig probe;
    core::Trace oracle;
};

/** The one JobSpec -> EngineConfig mapping (no snapshot path, no
 *  callbacks; callers attach those). */
core::EngineConfig engineConfigFromSpec(const JobSpec &spec);

/** The one JobSpec -> IslandConfig mapping (island.h). */
core::IslandConfig islandConfigFromSpec(const JobSpec &spec);

/** Parse + oracle materialization. @throws std::runtime_error on a
 *  design that does not parse, a missing module, or a bad oracle. */
JobInputs buildJobInputs(const JobSpec &spec);

/** Map a finished engine run to the wire result payload. */
Json resultToJson(const core::RepairResult &res);

// ---- island-model wire mappings (one schema for the in-process
// ---- daemon path and the distributed coordinator path, so the two
// ---- runs' fingerprints can be compared field by field) ----

/** Imported-migrant ledger records <-> JSON ([{epoch, keys:[..]}]). */
Json migrantRecordsToJson(const std::vector<core::MigrantRecord> &l);
std::vector<core::MigrantRecord> migrantRecordsFromJson(const Json &j);

/** One island's digest — the fingerprinted fields (bestFitness ships
 *  as a hexfloat string so it round-trips bit-exactly) plus the
 *  volatile work counters. */
Json islandDigestToJson(const core::IslandStats &st);
/** @throws std::runtime_error on a malformed digest. */
core::IslandStats islandStatsFromDigest(const Json &digest);

/** The "islands" block of a K-island result payload: configuration,
 *  winner, per-island digests, sealed broadcasts, migration totals and
 *  the canonical fingerprint (decimal string — it is a uint64). */
Json islandBlockJson(
    uint64_t seed, const core::IslandConfig &cfg, bool found,
    int winnerIsland, int winnerEpoch,
    const std::vector<core::IslandStats> &islands,
    const std::vector<std::pair<int, std::vector<std::string>>>
        &broadcasts,
    const core::MigrationStats &migration, uint64_t fingerprint);

/** Full result payload of an in-process K-island run: the winning
 *  island's result plus the "islands" block. */
Json islandOutcomeToJson(const core::IslandOutcome &outcome,
                         uint64_t seed,
                         const core::IslandConfig &cfg);

/** How runRepairJob() ended. */
struct SessionOutcome
{
    JobState state = JobState::Failed;
    Json result;        //!< payload for Done/Canceled
    std::string error;  //!< diagnostic for Failed
};

/**
 * Execute (or resume) one job. @p snapshotPath receives a checkpoint
 * every generation; when the file already exists the run resumes from
 * it bit-identically. @p onGeneration fires after each generation's
 * checkpoint is durable; @p shouldStop is polled mid-generation. A
 * true @p shouldStop ending maps to Canceled (with the partial-run
 * counters as payload); every exception maps to Failed. Never throws.
 * @p provenance is stamped into each checkpoint (the fleet worker's
 * name) — informational only, it never changes the search.
 */
SessionOutcome
runRepairJob(const JobSpec &spec, const std::string &snapshotPath,
             const std::function<void(const core::GenerationStats &)>
                 &onGeneration,
             const std::function<bool()> &shouldStop,
             const std::string &provenance = "");

/**
 * Transport hooks a distributed island shard uses to reach its
 * coordinator (the fleet worker wires these to migrate / cache_sync
 * frames; tests may wire them straight to a MigrationLedger).
 */
struct IslandShardHooks
{
    /** Blocking epoch exchange: offer this island's elites, return the
     *  sealed broadcast migrant set. Sets *stop when the run must end
     *  (a winner sealed at this epoch or earlier, lease lost, link
     *  dead). Required. */
    std::function<std::vector<core::Variant>(
        int epoch, std::vector<core::Variant> elites, bool *stop)>
        exchange;
    /** Audit hook for a resumed shard's imported-migrant ledger
     *  (coordinator-side verifyReplay); may be null. */
    std::function<void(const std::vector<core::MigrantRecord> &)>
        replay;
    /** Fleet-shared fitness cache (may be null — no sharing). */
    std::function<void(
        const std::vector<std::string> &,
        std::unordered_map<std::string, core::FitnessCache::Entry> *,
        std::unordered_map<std::string, core::QuarantineEntry> *)>
        lookup;
    std::function<void(
        const std::vector<
            std::pair<std::string, core::FitnessCache::Entry>> &,
        const std::vector<std::pair<std::string,
                                    core::QuarantineEntry>> &)>
        publish;
};

/** How one island shard of a distributed K-island job ended. */
struct IslandShardOutcome
{
    SessionOutcome session;  //!< Done/Failed + result payload
    Json digest;             //!< island digest for the done frame
    bool stopped = false;    //!< ended by a stop (winner/cancel)
};

/**
 * Execute (or resume) one island shard of a distributed K-island job.
 * Same checkpoint contract as runRepairJob() — the snapshot carries
 * island provenance (v8) and the resume path hands the restored
 * migrant ledger to @p hooks.replay before continuing. A normal return
 * maps to Done (even when a coordinator stop ended the search — the
 * coordinator decides the job's overall state); exceptions map to
 * Failed. Never throws.
 */
IslandShardOutcome runIslandShard(
    const JobSpec &spec, int island, const std::string &snapshotPath,
    const IslandShardHooks &hooks,
    const std::function<void(const core::GenerationStats &)>
        &onGeneration,
    const std::function<bool()> &shouldStop,
    const std::string &provenance = "");

} // namespace cirfix::service
