#pragma once

/**
 * @file
 * Message layer of the repair-service wire protocol (version 1).
 *
 * Every frame (framing.h) carries one JSON object with a "type"
 * member. A connection opens with a versioned handshake — the client
 * sends {"type":"hello","version":1} and the server answers with its
 * own hello (or a version_mismatch error and a close) — after which
 * the client issues requests:
 *
 *   type        direction  payload
 *   ----------  ---------  ------------------------------------------
 *   hello       both       version, server name (server side)
 *   submit      c -> s     job: JobSpec (design, tb, dut, oracle/golden,
 *                          params, priority)
 *   submitted   s -> c     id of the accepted job
 *   status      c -> s     id -> job: summary (state, progress)
 *   list        c -> s     -> jobs: array of summaries
 *   cancel      c -> s     id -> ok (queued jobs cancel immediately;
 *                          running jobs stop mid-generation)
 *   result      c -> s     id -> result: terminal payload (error
 *                          not_done while the job is still live)
 *   subscribe   c -> s     id -> stream of event frames, ending with
 *                          the terminal state event
 *   event       s -> c     generation progress or a state change
 *   ok          s -> c     generic success
 *   error       s -> c     code (stable identifier) + message (human)
 *
 * Admission control is part of the contract: a submit beyond the
 * queue depth or the per-job budget caps is answered with a structured
 * error (code queue_full / budget_too_large) — never silently dropped
 * and never blocking the accept loop. A coordinator extends the
 * taxonomy with no_workers (fleet mode with zero live executors) and
 * degraded (worker capacity below the configured floor; queue depth is
 * halved until workers return).
 *
 * Fleet extensions (same version, same framing). A worker's hello
 * carries role:"worker" plus a worker name; the coordinator then
 * speaks a strict request/response loop on that connection:
 *
 *   claim      w -> c     wait_ms -> job (spec + snapshot + lease) or
 *                         no_job when the queue stayed empty
 *   job        c -> w     id, spec, snapshot (may be empty), lease_id,
 *                         lease_seconds; island >= 0 marks an island
 *                         shard of a K-island job
 *   progress   w -> c     id, lease_id, generation stats, snapshot
 *                         bytes -> ok (carries cancel flag) or
 *                         error lease_lost
 *   heartbeat  w -> c     id, lease_id -> ok (cancel flag) / lease_lost
 *   done       w -> c     id, lease_id, state, result/error (island
 *                         shards add island + digest) -> ok /
 *                         lease_lost
 *
 * Island extensions (jobs submitted with params.islands > 1 on a
 * coordinator are split into one shard per island, each with its own
 * lease; see DESIGN.md "Island-model evolution"):
 *
 *   migrate    w -> c     id, lease_id, island, epoch, elites (variant
 *                         blob) -> ok {wait:true} while the epoch
 *                         barrier is open, else migrants {stop, blob}.
 *                         Re-sent as a poll; the coordinator's submit
 *                         is idempotent per (island, epoch). A frame
 *                         with a "replay" ledger (and no elites) asks
 *                         the coordinator to audit a resumed shard's
 *                         imported-migrant history.
 *   cache_sync w -> c     id, lease_id, optional publish (keys +
 *                         variant blob) + condemn (quarantine records)
 *                         + lookup (keys) -> cache {hit_keys, hits
 *                         blob, quarantined records}. Shares the
 *                         patch-keyed fitness cache fleet-wide so no
 *                         worker re-simulates a candidate any island
 *                         already scored.
 *
 * Leases are the duplication barrier: every assignment mints a fresh
 * lease_id, and progress/done frames quoting a stale lease are
 * rejected with lease_lost — a worker that was presumed dead and kept
 * computing cannot commit a result the coordinator already re-queued.
 *
 * Idempotent submits: a client may attach a request_id to a submit and
 * retry it verbatim after a transport error; the server replies with
 * the originally assigned job id instead of enqueueing a duplicate.
 */

#include <cstdint>
#include <string>

#include "service/json.h"

namespace cirfix::service {

inline constexpr int kProtocolVersion = 1;
inline constexpr const char *kServerName = "cirfix-repaird";

/** Stable error codes carried in the "code" member of error frames. */
namespace errc {
inline constexpr const char *kQueueFull = "queue_full";
inline constexpr const char *kBudgetTooLarge = "budget_too_large";
inline constexpr const char *kBadRequest = "bad_request";
inline constexpr const char *kUnknownJob = "unknown_job";
inline constexpr const char *kNotDone = "not_done";
inline constexpr const char *kVersionMismatch = "version_mismatch";
inline constexpr const char *kInternal = "internal";
/** Fleet admission: coordinator requires workers and none are live. */
inline constexpr const char *kNoWorkers = "no_workers";
/** Fleet admission: capacity below the floor; depth halved. */
inline constexpr const char *kDegraded = "degraded";
/** The lease quoted by a progress/done/heartbeat frame is stale: the
 *  job was re-assigned. The worker must abandon the attempt. */
inline constexpr const char *kLeaseLost = "lease_lost";
} // namespace errc

/** Job lifecycle. Queued -> Running -> {Done, Canceled, Failed};
 *  Queued -> Canceled directly; a daemon restart moves a Running job
 *  back to Queued (it resumes from its generation snapshot). */
enum class JobState { Queued, Running, Done, Canceled, Failed };

const char *jobStateName(JobState s);
JobState jobStateFromName(const std::string &name); //!< throws
inline bool
isTerminal(JobState s)
{
    return s == JobState::Done || s == JobState::Canceled ||
           s == JobState::Failed;
}

/** Engine knobs a submission may set (mirrors EngineConfig fields the
 *  service exposes; everything else keeps the engine default). */
struct JobParams
{
    int popSize = 40;
    int maxGenerations = 8;
    double maxSeconds = 600.0;
    uint64_t seed = 1;
    int numThreads = 1;  //!< per-job; the daemon multiplexes jobs
    double phi = 2.0;
    double evalDeadlineSeconds = 30.0;
    uint64_t evalMemoryBudget = 64ull << 20;
    /** Island-model evolution (island.h): subpopulation count. 1 is a
     *  plain single-population run; a coordinator shards K > 1 across
     *  distinct workers. */
    int islands = 1;
    /** Generations per migration epoch (islands > 1 only). */
    int migrationInterval = 2;
    /** Elites each island exports at every epoch boundary. */
    int migrantsPerIsland = 2;
};

/** One repair request: a faulty design + expected behavior. Exactly
 *  one of oracleCsv / goldenSource must be set. */
struct JobSpec
{
    std::string designSource;  //!< faulty DUT + testbench (+ extras)
    std::string tbModule;
    std::string dutModule;
    std::string oracleCsv;     //!< recorded expected-behavior trace
    std::string goldenSource;  //!< or: golden DUT re-simulated server-side
    JobParams params;
    int priority = 0;          //!< higher runs first; FIFO within a level
};

Json toJson(const JobSpec &spec);
/** @throws std::runtime_error on missing/invalid members. */
JobSpec jobSpecFromJson(const Json &j);

// ---- frame builders ----
Json makeHello();
/** Hello announcing a fleet worker (role:"worker" + name). */
Json makeWorkerHello(const std::string &workerName);
Json makeError(const std::string &code, const std::string &message);

/** Check an incoming hello; returns false (and fills @p why) on a
 *  version or shape mismatch. Accepts both client and worker hellos;
 *  @p role (optional) receives "client" or "worker". */
bool checkHello(const Json &msg, std::string *why,
                std::string *role = nullptr,
                std::string *workerName = nullptr);

} // namespace cirfix::service
