#include "service/protocol.h"

#include <stdexcept>

namespace cirfix::service {

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Canceled: return "canceled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

JobState
jobStateFromName(const std::string &name)
{
    for (JobState s : {JobState::Queued, JobState::Running,
                       JobState::Done, JobState::Canceled,
                       JobState::Failed})
        if (name == jobStateName(s))
            return s;
    throw std::runtime_error("unknown job state '" + name + "'");
}

Json
toJson(const JobSpec &spec)
{
    Json j = Json::object();
    j["design"] = spec.designSource;
    j["tb"] = spec.tbModule;
    j["dut"] = spec.dutModule;
    if (!spec.oracleCsv.empty())
        j["oracle_csv"] = spec.oracleCsv;
    if (!spec.goldenSource.empty())
        j["golden"] = spec.goldenSource;
    j["priority"] = spec.priority;
    Json p = Json::object();
    p["pop"] = spec.params.popSize;
    p["gens"] = spec.params.maxGenerations;
    p["budget_seconds"] = spec.params.maxSeconds;
    p["seed"] = static_cast<long long>(spec.params.seed);
    p["threads"] = spec.params.numThreads;
    p["phi"] = spec.params.phi;
    p["eval_deadline"] = spec.params.evalDeadlineSeconds;
    p["eval_mem_budget"] =
        static_cast<long long>(spec.params.evalMemoryBudget);
    p["islands"] = spec.params.islands;
    p["migration_interval"] = spec.params.migrationInterval;
    p["migrants"] = spec.params.migrantsPerIsland;
    j["params"] = std::move(p);
    return j;
}

JobSpec
jobSpecFromJson(const Json &j)
{
    if (!j.isObject())
        throw std::runtime_error("job spec must be an object");
    JobSpec spec;
    spec.designSource = j.str("design");
    spec.tbModule = j.str("tb");
    spec.dutModule = j.str("dut");
    spec.oracleCsv = j.str("oracle_csv");
    spec.goldenSource = j.str("golden");
    spec.priority = static_cast<int>(j.num("priority", 0));
    if (spec.designSource.empty())
        throw std::runtime_error("job spec missing 'design'");
    if (spec.tbModule.empty())
        throw std::runtime_error("job spec missing 'tb'");
    if (spec.dutModule.empty())
        throw std::runtime_error("job spec missing 'dut'");
    if (spec.oracleCsv.empty() == spec.goldenSource.empty())
        throw std::runtime_error(
            "job spec needs exactly one of 'oracle_csv' / 'golden'");
    if (const Json *p = j.find("params")) {
        JobParams d;  // defaults
        spec.params.popSize = static_cast<int>(p->num("pop", d.popSize));
        spec.params.maxGenerations =
            static_cast<int>(p->num("gens", d.maxGenerations));
        spec.params.maxSeconds =
            p->real("budget_seconds", d.maxSeconds);
        spec.params.seed = static_cast<uint64_t>(
            p->num("seed", static_cast<int64_t>(d.seed)));
        spec.params.numThreads =
            static_cast<int>(p->num("threads", d.numThreads));
        spec.params.phi = p->real("phi", d.phi);
        spec.params.evalDeadlineSeconds =
            p->real("eval_deadline", d.evalDeadlineSeconds);
        spec.params.evalMemoryBudget = static_cast<uint64_t>(p->num(
            "eval_mem_budget",
            static_cast<int64_t>(d.evalMemoryBudget)));
        spec.params.islands =
            static_cast<int>(p->num("islands", d.islands));
        spec.params.migrationInterval = static_cast<int>(
            p->num("migration_interval", d.migrationInterval));
        spec.params.migrantsPerIsland =
            static_cast<int>(p->num("migrants", d.migrantsPerIsland));
    }
    if (spec.params.popSize < 1 || spec.params.maxGenerations < 0 ||
        spec.params.maxSeconds <= 0)
        throw std::runtime_error("job spec has nonsensical GP bounds");
    if (spec.params.islands < 1 ||
        (spec.params.islands > 1 &&
         (spec.params.migrationInterval < 1 ||
          spec.params.migrantsPerIsland < 0)))
        throw std::runtime_error(
            "job spec has nonsensical island parameters");
    return spec;
}

Json
makeHello()
{
    Json j = Json::object();
    j["type"] = "hello";
    j["version"] = kProtocolVersion;
    return j;
}

Json
makeWorkerHello(const std::string &workerName)
{
    Json j = makeHello();
    j["role"] = "worker";
    j["name"] = workerName;
    return j;
}

Json
makeError(const std::string &code, const std::string &message)
{
    Json j = Json::object();
    j["type"] = "error";
    j["code"] = code;
    j["message"] = message;
    return j;
}

bool
checkHello(const Json &msg, std::string *why, std::string *role,
           std::string *workerName)
{
    if (!msg.isObject() || msg.str("type") != "hello") {
        if (why)
            *why = "expected a hello frame to open the connection";
        return false;
    }
    int64_t version = msg.num("version", -1);
    if (version != kProtocolVersion) {
        if (why)
            *why = "protocol version " + std::to_string(version) +
                   " is not supported (server speaks version " +
                   std::to_string(kProtocolVersion) + ")";
        return false;
    }
    std::string r = msg.str("role");
    if (r.empty())
        r = "client";
    if (r != "client" && r != "worker") {
        if (why)
            *why = "unknown hello role '" + r + "'";
        return false;
    }
    if (role)
        *role = r;
    if (workerName)
        *workerName = msg.str("name");
    return true;
}

} // namespace cirfix::service
