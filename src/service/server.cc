#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <poll.h>
#include <unistd.h>

#include "service/framing.h"
#include "service/session.h"

namespace cirfix::service {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void
sysError(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " +
                                 path);
    }
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::string
slurpFileOrEmpty(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** How often the accept loop wakes with nothing to accept: this is
 *  the lease-expiry sweep tick, so failover latency is bounded by
 *  leaseSeconds + this. */
constexpr int kSweepTickMs = 100;

} // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), queue_(cfg_.limits)
{
    // Coordinator mode shards K-island jobs across workers; the
    // classic daemon runs them in-process (session.cc). Must be set
    // before recoverStateDir() so restored jobs rebuild their shards.
    queue_.setShardMode(cfg_.fleet.requireWorkers);
}

Server::~Server()
{
    stop();
}

std::string
Server::jobFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".json";
}

std::string
Server::snapshotFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".snap";
}

std::string
Server::resultFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) +
           ".result.json";
}

std::string
Server::ledgerFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".ledger";
}

std::string
Server::shardSnapshotFile(long id, int island) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".i" +
           std::to_string(island) + ".snap";
}

void
Server::persistJob(const Job &job)
{
    Json j = Json::object();
    j["id"] = job.id;
    j["seq"] = job.seq;
    j["spec"] = toJson(job.spec);
    if (!job.requestId.empty())
        j["request_id"] = job.requestId;
    if (!job.worker.empty())
        j["worker"] = job.worker;
    if (job.attempts > 0)
        j["attempts"] = job.attempts;
    writeFileAtomic(jobFile(job.id), j.dump());
}

void
Server::persistResult(const Job &job)
{
    JobState state = JobState::Failed;
    Json result;
    std::string error;
    if (!queue_.resultFor(job.id, &state, &result, &error))
        return;
    Json j = Json::object();
    j["id"] = job.id;
    j["state"] = jobStateName(state);
    j["result"] = std::move(result);
    j["error"] = error;
    writeFileAtomic(resultFile(job.id), j.dump());
}

void
Server::recoverStateDir()
{
    if (!fs::exists(cfg_.stateDir))
        return;
    std::vector<fs::path> jobFiles;
    for (const auto &entry : fs::directory_iterator(cfg_.stateDir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("job-", 0) == 0 &&
            name.size() > 9 &&
            name.compare(name.size() - 5, 5, ".json") == 0 &&
            name.find(".result.") == std::string::npos)
            jobFiles.push_back(entry.path());
    }
    for (const fs::path &path : jobFiles) {
        try {
            Json j = Json::parse(slurpFile(path.string()));
            auto job = std::make_shared<Job>();
            job->id = j.num("id", -1);
            job->seq = j.num("seq", 0);
            if (job->id < 0)
                continue;
            const Json *spec = j.find("spec");
            if (!spec)
                continue;
            job->spec = jobSpecFromJson(*spec);
            job->requestId = j.str("request_id");
            job->worker = j.str("worker");
            job->attempts = static_cast<int>(j.num("attempts", 0));
            std::string rf = resultFile(job->id);
            if (fs::exists(rf)) {
                Json r = Json::parse(slurpFile(rf));
                job->state = jobStateFromName(r.str("state", "failed"));
                if (const Json *res = r.find("result"))
                    job->result = *res;
                job->error = r.str("error");
            } else {
                job->state = JobState::Queued;  // resumes via .snap
            }
            queue_.restore(std::move(job));
        } catch (const std::exception &) {
            // A torn/corrupt record (e.g. killed mid-first-write) is
            // skipped rather than wedging the daemon; its atomic-write
            // temp file never replaced a good one.
        }
    }
}

void
Server::start()
{
    if (started_)
        return;
    if ((cfg_.socketPath.empty() && cfg_.listenAddress.empty()) ||
        cfg_.stateDir.empty())
        throw std::runtime_error(
            "server needs a listen address and a state dir");
    fs::create_directories(cfg_.stateDir);
    recoverStateDir();

    Address addr = Address::parse(cfg_.listenAddress.empty()
                                      ? cfg_.socketPath
                                      : cfg_.listenAddress);
    listener_ = Listener::bind(addr);
    if (::pipe(stopPipe_) != 0) {
        listener_.close();
        sysError("pipe");
    }

    stopping_.store(false);
    updateFleetStatus();
    started_ = true;
    acceptThread_ = std::thread(&Server::acceptLoop, this);
    for (int i = 0; i < cfg_.workers; ++i)
        workerThreads_.emplace_back(&Server::workerLoop, this);
}

std::string
Server::boundAddress() const
{
    return listener_.boundAddress().str();
}

void
Server::requestStop()
{
    if (stopPipe_[1] >= 0) {
        char b = 'q';
        [[maybe_unused]] ssize_t w = ::write(stopPipe_[1], &b, 1);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stopMu_);
    stopCv_.wait(lock, [&] { return stopRequested_; });
}

void
Server::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.close();

    // Wake workers (idle ones return nullptr from pop) and ask running
    // engines to stop at their next shouldStop poll; their jobs stay
    // resumable — shutdown is not a cancel.
    queue_.close();
    for (std::thread &t : workerThreads_)
        t.join();
    workerThreads_.clear();

    // Unblock any connection thread parked in a read or a subscribe.
    // Copy the live connections out under the lock: each copy keeps
    // its Conn alive through the shutdown() call even if the owning
    // thread clears its slot concurrently, and a cleared slot's fd may
    // already be recycled — which is exactly why slots are cleared
    // *before* the Conn closes (never shutdown a stranger's fd).
    std::vector<std::shared_ptr<Conn>> live;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (const std::shared_ptr<Conn> &c : conns_)
            if (c)
                live.push_back(c);
    }
    for (const std::shared_ptr<Conn> &c : live)
        c->shutdown();
    live.clear();
    for (std::thread &t : connThreads_)
        t.join();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        connThreads_.clear();
        conns_.clear();
    }

    for (int i = 0; i < 2; ++i)
        if (stopPipe_[i] >= 0) {
            ::close(stopPipe_[i]);
            stopPipe_[i] = -1;
        }
    started_ = false;
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Server::updateFleetStatus()
{
    int remote = fleet_.workerCount();
    int capacity = cfg_.workers + remote;
    bool noWorkers = cfg_.fleet.requireWorkers && capacity == 0;
    bool degraded = cfg_.fleet.requireWorkers && !noWorkers &&
                    remote < cfg_.fleet.minWorkers;
    queue_.setFleetStatus(noWorkers, degraded);
}

std::shared_ptr<IslandCoordinator>
Server::islandCoordinatorFor(const std::shared_ptr<Job> &job)
{
    if (job->spec.params.islands <= 1)
        return nullptr;
    std::lock_guard<std::mutex> lock(islandMu_);
    auto it = islandJobs_.find(job->id);
    if (it != islandJobs_.end())
        // May be the null tombstone of an assembled job: a late shard
        // frame must get "no coordinator", never a fresh one that
        // would re-create the ledger the assembly just removed.
        return it->second;
    auto coord = std::make_shared<IslandCoordinator>(
        islandConfigFromSpec(job->spec), ledgerFile(job->id));
    if (coord->recover() == IslandCoordinator::Recovery::Corrupt) {
        // An undecodable ledger restarts the job from scratch: drop it
        // and every shard snapshot. Determinism makes the restarted
        // search converge to the same result — only work is lost.
        coord->removeLedgerFile();
        for (int i = 0; i < job->spec.params.islands; ++i)
            std::remove(shardSnapshotFile(job->id, i).c_str());
        coord = std::make_shared<IslandCoordinator>(
            islandConfigFromSpec(job->spec), ledgerFile(job->id));
    }
    islandJobs_.emplace(job->id, coord);
    return coord;
}

void
Server::finishIslandJob(const std::shared_ptr<Job> &job,
                        const std::shared_ptr<IslandCoordinator>
                            &coord)
{
    {
        // The done handler and the sweep can both observe allDone();
        // whoever swaps the registry entry for the null tombstone
        // commits the job. The tombstone stays so a late shard frame
        // cannot resurrect a coordinator for the finished job.
        std::lock_guard<std::mutex> lock(islandMu_);
        auto it = islandJobs_.find(job->id);
        if (it == islandJobs_.end() || !it->second)
            return;
        it->second = nullptr;
    }
    std::string error;
    Json result = coord->assemble(job->spec.params.seed, &error);
    JobState state = JobState::Failed;
    if (error.empty()) {
        bool found = coord->ledger().winner().first != -1;
        state = !found && job->cancelRequested.load(
                              std::memory_order_relaxed)
                    ? JobState::Canceled
                    : JobState::Done;
        queue_.setResult(*job, std::move(result));
    }
    queue_.setState(*job, state, error);
    try {
        persistResult(*job);
    } catch (const std::exception &) {
    }
    // retire() removes the ledger file AND disables persist(), so a
    // shard_done/migrate persist racing this cleanup cannot write the
    // file back afterwards.
    coord->retire();
    for (int i = 0; i < job->spec.params.islands; ++i)
        std::remove(shardSnapshotFile(job->id, i).c_str());
}

void
Server::sweepIslandJobs()
{
    std::vector<std::pair<long, std::shared_ptr<IslandCoordinator>>>
        live;
    {
        std::lock_guard<std::mutex> lock(islandMu_);
        for (const auto &[id, coord] : islandJobs_)
            if (coord)  // skip tombstones of assembled jobs
                live.emplace_back(id, coord);
    }
    for (const auto &[id, coord] : live) {
        std::shared_ptr<Job> job = queue_.find(id);
        if (!job)
            continue;
        if (job->cancelRequested.load(std::memory_order_relaxed))
            for (int island : queue_.reapCanceledShards(*job))
                coord->shardReaped(island);
        if (coord->allDone())
            finishIslandJob(job, coord);
    }
}

void
Server::sweepLeases()
{
    sweepIslandJobs();
    for (long id : queue_.requeueExpired()) {
        // A requeue normally needs no persistence (the job file and
        // snapshot are already durable), but a cancel-while-leased
        // goes terminal here and must seal its result file.
        std::shared_ptr<Job> job = queue_.find(id);
        if (!job)
            continue;
        JobState state = JobState::Queued;
        Json result;
        std::string error;
        queue_.resultFor(id, &state, &result, &error);
        if (isTerminal(state)) {
            try {
                persistResult(*job);
            } catch (const std::exception &) {
            }
        }
    }
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2] = {{listener_.fd(), POLLIN, 0},
                         {stopPipe_[0], POLLIN, 0}};
        int rc = ::poll(fds, 2, kSweepTickMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0) {
            sweepLeases();
            continue;
        }
        if (fds[1].revents) {
            // Stop requested: wake wait()ers and stop accepting.
            {
                std::lock_guard<std::mutex> lock(stopMu_);
                stopRequested_ = true;
            }
            stopCv_.notify_all();
            break;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        std::unique_ptr<Conn> accepted;
        try {
            accepted = listener_.accept();
        } catch (const std::exception &) {
            continue;
        }
        if (!accepted)
            continue;  // raced away (non-blocking accept)
        std::shared_ptr<Conn> conn(std::move(accepted));
        std::lock_guard<std::mutex> lock(connMu_);
        size_t slot = conns_.size();
        conns_.push_back(conn);
        connThreads_.emplace_back([this, conn, slot] {
            handleConnection(conn);
            std::lock_guard<std::mutex> l(connMu_);
            conns_[slot] = nullptr;  // last ref closes the fd
        });
    }
}

void
Server::workerLoop()
{
    while (std::shared_ptr<Job> job = queue_.pop())
        runJob(job);
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    auto on_gen = [this, job](const core::GenerationStats &gs) {
        queue_.publishGeneration(*job, gs);
    };
    auto should_stop = [this, job] {
        return job->cancelRequested.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_relaxed);
    };
    SessionOutcome out = runRepairJob(job->spec, snapshotFile(job->id),
                                      on_gen, should_stop);
    if (out.state == JobState::Canceled &&
        !job->cancelRequested.load(std::memory_order_relaxed)) {
        // The engine stopped because the daemon is shutting down, not
        // because a client asked: the job stays resumable. Its state
        // file still says queued and its snapshot is durable.
        return;
    }
    queue_.setResult(*job, std::move(out.result));
    queue_.setState(*job, out.state, out.error);
    try {
        persistResult(*job);
    } catch (const std::exception &) {
        // The result stays queryable in-process; a restart will re-run
        // the job from its snapshot instead of replaying the result.
    }
}

void
Server::handleConnection(const std::shared_ptr<Conn> &conn)
{
    std::string payload;
    try {
        if (!conn->readFrame(&payload))
            return;
        std::string why;
        Json hello;
        try {
            hello = Json::parse(payload);
        } catch (const std::exception &e) {
            conn->writeFrame(
                makeError(errc::kBadRequest, e.what()).dump());
            return;
        }
        std::string role, workerName;
        if (!checkHello(hello, &why, &role, &workerName)) {
            conn->writeFrame(
                makeError(errc::kVersionMismatch, why).dump());
            return;
        }
        Json reply = makeHello();
        reply["server"] = kServerName;
        conn->writeFrame(reply.dump());

        if (role == "worker") {
            std::string key = fleet_.workerConnected(workerName);
            updateFleetStatus();
            try {
                handleWorkerConnection(*conn, key);
            } catch (const std::exception &) {
                // fall through to the unified cleanup below
            }
            fleet_.workerDisconnected(key);
            updateFleetStatus();
            // The link is the liveness signal: a vanished worker's
            // leases requeue immediately, not at lease expiry.
            for (long id : queue_.requeueOwnedBy(key))
                (void)id;
            return;
        }

        while (conn->readFrame(&payload)) {
            Json msg;
            try {
                msg = Json::parse(payload);
            } catch (const std::exception &e) {
                conn->writeFrame(
                    makeError(errc::kBadRequest, e.what()).dump());
                continue;
            }
            bool keep_open = true;
            Json resp = dispatch(msg, *conn, keep_open);
            if (!resp.isNull())
                conn->writeFrame(resp.dump());
            if (!keep_open)
                break;
        }
    } catch (const std::exception &) {
        // Connection-level failure (peer vanished mid-frame, write
        // error): drop the connection; jobs are unaffected.
    }
}

// ---------------------------------------------------------------------------
// Coordinator side of the fleet protocol

void
Server::handleWorkerConnection(Conn &conn, const std::string &key)
{
    std::string payload;
    while (conn.readFrame(&payload)) {
        Json msg;
        try {
            msg = Json::parse(payload);
        } catch (const std::exception &e) {
            conn.writeFrame(
                makeError(errc::kBadRequest, e.what()).dump());
            continue;
        }
        Json resp = dispatchWorker(msg, key);
        conn.writeFrame(resp.dump());
        if (stopping_.load(std::memory_order_relaxed))
            break;
    }
}

Json
Server::dispatchWorker(const Json &msg, const std::string &key)
{
    std::string type = msg.str("type");

    if (type == "claim") {
        long waitMs = msg.num("wait_ms", 0);
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(waitMs);
        std::shared_ptr<Job> job;
        uint64_t leaseId = 0;
        int island = -1;
        while (true) {
            job = queue_.tryClaim(key, cfg_.fleet.leaseSeconds,
                                  &leaseId, &island);
            if (job || stopping_.load(std::memory_order_relaxed) ||
                std::chrono::steady_clock::now() >= deadline)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (!job) {
            Json resp = Json::object();
            resp["type"] = "no_job";
            return resp;
        }
        try {
            persistJob(*job);  // records worker provenance + attempts
        } catch (const std::exception &) {
        }
        Json resp = Json::object();
        resp["type"] = "job";
        resp["id"] = job->id;
        resp["lease_id"] = static_cast<long long>(leaseId);
        resp["lease_seconds"] = cfg_.fleet.leaseSeconds;
        resp["spec"] = toJson(job->spec);
        if (island >= 0) {
            // An island shard: make sure the coordinator exists (and
            // has recovered its ledger) before the shard's first
            // migrate frame arrives.
            islandCoordinatorFor(job);
            resp["island"] = island;
            resp["snapshot"] = slurpFileOrEmpty(
                shardSnapshotFile(job->id, island));
        } else {
            // Empty for a fresh job; the dead worker's last durable
            // checkpoint on failover — the claimant resumes from it
            // bit-identically.
            resp["snapshot"] = slurpFileOrEmpty(snapshotFile(job->id));
        }
        return resp;
    }

    if (type == "progress") {
        long id = msg.num("id", -1);
        uint64_t leaseId = static_cast<uint64_t>(msg.num("lease_id", 0));
        bool cancel = false;
        if (!queue_.renewLease(id, leaseId, cfg_.fleet.leaseSeconds,
                               &cancel))
            return makeError(errc::kLeaseLost,
                             "job " + std::to_string(id) +
                                 " is no longer leased to you");
        std::shared_ptr<Job> job = queue_.find(id);
        if (!job)
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        int island = static_cast<int>(msg.num("island", -1));
        std::string snapshot = msg.str("snapshot");
        if (!snapshot.empty()) {
            try {
                writeFileAtomic(island >= 0
                                    ? shardSnapshotFile(id, island)
                                    : snapshotFile(id),
                                snapshot);
            } catch (const std::exception &) {
                // Progress still counts; failover would just fall
                // back to an older checkpoint.
            }
        }
        core::GenerationStats gs;
        gs.generation = static_cast<int>(msg.num("generation", 0));
        gs.bestFitness = msg.real("best_fitness", -1.0);
        gs.fitnessEvals = msg.num("fitness_evals", 0);
        gs.invalidMutants = msg.num("invalid_mutants", 0);
        gs.totalMutants = msg.num("total_mutants", 0);
        gs.island = island;
        gs.epoch = static_cast<int>(msg.num("epoch", 0));
        gs.fleetCacheHits = msg.num("fleet_cache_hits", 0);
        queue_.publishGeneration(*job, gs);
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["cancel"] = cancel;
        return resp;
    }

    if (type == "heartbeat") {
        long id = msg.num("id", -1);
        uint64_t leaseId = static_cast<uint64_t>(msg.num("lease_id", 0));
        bool cancel = false;
        if (!queue_.renewLease(id, leaseId, cfg_.fleet.leaseSeconds,
                               &cancel))
            return makeError(errc::kLeaseLost,
                             "job " + std::to_string(id) +
                                 " is no longer leased to you");
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["cancel"] = cancel;
        return resp;
    }

    if (type == "migrate" || type == "cache_sync") {
        long id = msg.num("id", -1);
        uint64_t leaseId =
            static_cast<uint64_t>(msg.num("lease_id", 0));
        bool cancel = false;
        if (!queue_.renewLease(id, leaseId, cfg_.fleet.leaseSeconds,
                               &cancel))
            return makeError(errc::kLeaseLost,
                             "job " + std::to_string(id) +
                                 " is no longer leased to you");
        std::shared_ptr<Job> job = queue_.find(id);
        if (!job)
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        std::shared_ptr<IslandCoordinator> coord =
            islandCoordinatorFor(job);
        if (!coord)
            return makeError(errc::kBadRequest,
                             "job " + std::to_string(id) +
                                 " is not an island job (or already "
                                 "assembled)");
        Json resp;
        try {
            resp = type == "migrate" ? coord->handleMigrate(msg)
                                     : coord->handleCacheSync(msg);
        } catch (const std::exception &e) {
            return makeError(errc::kInternal, e.what());
        }
        if (cancel)
            resp["cancel"] = true;
        return resp;
    }

    if (type == "done" && msg.num("island", -1) >= 0) {
        long id = msg.num("id", -1);
        uint64_t leaseId =
            static_cast<uint64_t>(msg.num("lease_id", 0));
        int island = -1;
        std::shared_ptr<Job> job =
            queue_.completeShardLeased(id, leaseId, &island);
        if (!job)
            return makeError(errc::kLeaseLost,
                             "job " + std::to_string(id) +
                                 " is no longer leased to you");
        std::shared_ptr<IslandCoordinator> coord =
            islandCoordinatorFor(job);
        if (coord) {
            JobState state = JobState::Failed;
            try {
                state = jobStateFromName(msg.str("state", "failed"));
            } catch (const std::exception &) {
            }
            const Json *digest = msg.find("digest");
            const Json *result = msg.find("result");
            std::string error;
            if (state == JobState::Failed) {
                error = msg.str("error");
                if (error.empty())
                    error = "island shard failed";
                // The job cannot succeed once any island failed: wind
                // the surviving shards down via the cancel relay.
                job->cancelRequested.store(true,
                                           std::memory_order_relaxed);
            }
            coord->shardDone(island,
                             digest && digest->isObject()
                                 ? *digest
                                 : Json::object(),
                             result ? *result : Json(), error);
            // Shard snapshots are kept until the whole job assembles:
            // a coordinator restart re-runs done shards from them
            // (their in-memory digests died with the coordinator).
            if (coord->allDone())
                finishIslandJob(job, coord);
        }
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["id"] = id;
        return resp;
    }

    if (type == "done") {
        long id = msg.num("id", -1);
        uint64_t leaseId = static_cast<uint64_t>(msg.num("lease_id", 0));
        std::shared_ptr<Job> job = queue_.completeLeased(id, leaseId);
        if (!job)
            // The duplication barrier: stale attempts never commit.
            return makeError(errc::kLeaseLost,
                             "job " + std::to_string(id) +
                                 " is no longer leased to you");
        JobState state = JobState::Failed;
        try {
            state = jobStateFromName(msg.str("state", "failed"));
        } catch (const std::exception &) {
        }
        if (const Json *result = msg.find("result"))
            queue_.setResult(*job, *result);
        queue_.setState(*job, state, msg.str("error"));
        try {
            persistResult(*job);
        } catch (const std::exception &) {
        }
        std::remove(snapshotFile(id).c_str());
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["id"] = id;
        return resp;
    }

    return makeError(errc::kBadRequest,
                     "unknown worker message type '" + type + "'");
}

// ---------------------------------------------------------------------------
// Client dispatch

Json
Server::dispatch(const Json &msg, Conn &conn, bool &keep_open)
{
    std::string type = msg.str("type");

    if (type == "submit") {
        JobSpec spec;
        try {
            const Json *body = msg.find("job");
            if (!body)
                throw std::runtime_error("submit needs a 'job' member");
            spec = jobSpecFromJson(*body);
        } catch (const std::exception &e) {
            return makeError(errc::kBadRequest, e.what());
        }
        std::string requestId = msg.str("request_id");
        auto admitted = queue_.submit(std::move(spec), requestId);
        if (const Rejection *rej = std::get_if<Rejection>(&admitted))
            return makeError(rej->code, rej->message);
        long id = std::get<long>(admitted);
        if (std::shared_ptr<Job> job = queue_.find(id)) {
            try {
                persistJob(*job);
            } catch (const std::exception &e) {
                // Not durable: admit it anyway but tell the client.
                Json resp = Json::object();
                resp["type"] = "submitted";
                resp["id"] = id;
                resp["durable"] = false;
                resp["warning"] = e.what();
                return resp;
            }
        }
        Json resp = Json::object();
        resp["type"] = "submitted";
        resp["id"] = id;
        resp["durable"] = true;
        return resp;
    }

    if (type == "status") {
        Json summary = queue_.summaryFor(msg.num("id", -1));
        if (summary.isNull())
            return makeError(errc::kUnknownJob,
                             "no job with id " +
                                 std::to_string(msg.num("id", -1)));
        Json resp = Json::object();
        resp["type"] = "status";
        resp["job"] = std::move(summary);
        LeaseStats ls = queue_.leaseStats();
        Json lease = Json::object();
        lease["assignments"] = static_cast<long long>(ls.assignments);
        lease["renewals"] = static_cast<long long>(ls.renewals);
        lease["expirations"] = static_cast<long long>(ls.expirations);
        lease["requeues"] = static_cast<long long>(ls.requeues);
        lease["stale_rejections"] =
            static_cast<long long>(ls.staleRejections);
        resp["lease_stats"] = std::move(lease);
        return resp;
    }

    if (type == "list") {
        Json resp = Json::object();
        resp["type"] = "list";
        Json jobs = Json::array();
        for (Json &s : queue_.summaries())
            jobs.push(std::move(s));
        resp["jobs"] = std::move(jobs);
        return resp;
    }

    if (type == "cancel") {
        long id = msg.num("id", -1);
        std::string why;
        bool existed = queue_.find(id) != nullptr;
        if (!queue_.cancel(id, &why))
            return makeError(existed ? errc::kBadRequest
                                     : errc::kUnknownJob,
                             why);
        if (std::shared_ptr<Job> job = queue_.find(id)) {
            JobState state = JobState::Queued;
            Json result;
            std::string error;
            queue_.resultFor(id, &state, &result, &error);
            if (isTerminal(state)) {
                try {
                    persistResult(*job);
                } catch (const std::exception &) {
                }
            }
        }
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["id"] = id;
        return resp;
    }

    if (type == "result") {
        long id = msg.num("id", -1);
        JobState state = JobState::Queued;
        Json result;
        std::string error;
        if (!queue_.resultFor(id, &state, &result, &error))
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        if (!isTerminal(state))
            return makeError(errc::kNotDone,
                             "job " + std::to_string(id) + " is " +
                                 jobStateName(state));
        Json resp = Json::object();
        resp["type"] = "result";
        resp["id"] = id;
        resp["state"] = jobStateName(state);
        resp["result"] = std::move(result);
        if (!error.empty())
            resp["error"] = error;
        return resp;
    }

    if (type == "subscribe") {
        long id = msg.num("id", -1);
        if (!queue_.find(id))
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        // Stream the job's full ordered event history, then live
        // events, ending after the terminal state event.
        size_t have = 0;
        Json ev;
        while (queue_.waitEvent(id, have, &ev)) {
            conn.writeFrame(ev.dump());
            ++have;
        }
        Json done = Json::object();
        done["type"] = "end_of_stream";
        done["id"] = id;
        return done;
    }

    (void)keep_open;
    return makeError(errc::kBadRequest,
                     "unknown message type '" + type + "'");
}

} // namespace cirfix::service
