#include "service/server.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/framing.h"
#include "service/session.h"

namespace cirfix::service {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void
sysError(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " +
                                 path);
    }
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

} // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)), queue_(cfg_.limits)
{}

Server::~Server()
{
    stop();
}

std::string
Server::jobFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".json";
}

std::string
Server::snapshotFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) + ".snap";
}

std::string
Server::resultFile(long id) const
{
    return cfg_.stateDir + "/job-" + std::to_string(id) +
           ".result.json";
}

void
Server::persistJob(const Job &job)
{
    Json j = Json::object();
    j["id"] = job.id;
    j["seq"] = job.seq;
    j["spec"] = toJson(job.spec);
    writeFileAtomic(jobFile(job.id), j.dump());
}

void
Server::persistResult(const Job &job)
{
    JobState state = JobState::Failed;
    Json result;
    std::string error;
    if (!queue_.resultFor(job.id, &state, &result, &error))
        return;
    Json j = Json::object();
    j["id"] = job.id;
    j["state"] = jobStateName(state);
    j["result"] = std::move(result);
    j["error"] = error;
    writeFileAtomic(resultFile(job.id), j.dump());
}

void
Server::recoverStateDir()
{
    if (!fs::exists(cfg_.stateDir))
        return;
    std::vector<fs::path> jobFiles;
    for (const auto &entry : fs::directory_iterator(cfg_.stateDir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("job-", 0) == 0 &&
            name.size() > 9 &&
            name.compare(name.size() - 5, 5, ".json") == 0 &&
            name.find(".result.") == std::string::npos)
            jobFiles.push_back(entry.path());
    }
    for (const fs::path &path : jobFiles) {
        try {
            Json j = Json::parse(slurpFile(path.string()));
            auto job = std::make_shared<Job>();
            job->id = j.num("id", -1);
            job->seq = j.num("seq", 0);
            if (job->id < 0)
                continue;
            const Json *spec = j.find("spec");
            if (!spec)
                continue;
            job->spec = jobSpecFromJson(*spec);
            std::string rf = resultFile(job->id);
            if (fs::exists(rf)) {
                Json r = Json::parse(slurpFile(rf));
                job->state = jobStateFromName(r.str("state", "failed"));
                if (const Json *res = r.find("result"))
                    job->result = *res;
                job->error = r.str("error");
            } else {
                job->state = JobState::Queued;  // resumes via .snap
            }
            queue_.restore(std::move(job));
        } catch (const std::exception &) {
            // A torn/corrupt record (e.g. killed mid-first-write) is
            // skipped rather than wedging the daemon; its atomic-write
            // temp file never replaced a good one.
        }
    }
}

void
Server::start()
{
    if (started_)
        return;
    if (cfg_.socketPath.empty() || cfg_.stateDir.empty())
        throw std::runtime_error(
            "server needs a socket path and a state dir");
    fs::create_directories(cfg_.stateDir);
    recoverStateDir();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof addr.sun_path)
        throw std::runtime_error("socket path too long: " +
                                 cfg_.socketPath);
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        sysError("socket");
    ::unlink(cfg_.socketPath.c_str());  // stale socket from a kill
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysError("bind " + cfg_.socketPath);
    }
    if (::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysError("listen");
    }
    if (::pipe(stopPipe_) != 0)
        sysError("pipe");

    stopping_.store(false);
    started_ = true;
    acceptThread_ = std::thread(&Server::acceptLoop, this);
    for (int i = 0; i < cfg_.workers; ++i)
        workerThreads_.emplace_back(&Server::workerLoop, this);
}

void
Server::requestStop()
{
    if (stopPipe_[1] >= 0) {
        char b = 'q';
        [[maybe_unused]] ssize_t w = ::write(stopPipe_[1], &b, 1);
    }
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stopMu_);
    stopCv_.wait(lock, [&] { return stopRequested_; });
}

void
Server::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(cfg_.socketPath.c_str());

    // Wake workers (idle ones return nullptr from pop) and ask running
    // engines to stop at their next shouldStop poll; their jobs stay
    // resumable — shutdown is not a cancel.
    queue_.close();
    for (std::thread &t : workerThreads_)
        t.join();
    workerThreads_.clear();

    // Unblock any connection thread parked in a read or a subscribe.
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (int fd : connFds_)
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : connThreads_)
        t.join();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        connThreads_.clear();
        connFds_.clear();
    }

    for (int i = 0; i < 2; ++i)
        if (stopPipe_[i] >= 0) {
            ::close(stopPipe_[i]);
            stopPipe_[i] = -1;
        }
    started_ = false;
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {stopPipe_[0], POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (fds[1].revents) {
            // Stop requested: wake wait()ers and stop accepting.
            {
                std::lock_guard<std::mutex> lock(stopMu_);
                stopRequested_ = true;
            }
            stopCv_.notify_all();
            break;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(connMu_);
        size_t slot = connFds_.size();
        connFds_.push_back(fd);
        connThreads_.emplace_back([this, fd, slot] {
            handleConnection(fd);
            std::lock_guard<std::mutex> l(connMu_);
            connFds_[slot] = -1;  // closed: never shutdown a reused fd
        });
    }
}

void
Server::workerLoop()
{
    while (std::shared_ptr<Job> job = queue_.pop())
        runJob(job);
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    auto on_gen = [this, job](const core::GenerationStats &gs) {
        queue_.publishGeneration(*job, gs);
    };
    auto should_stop = [this, job] {
        return job->cancelRequested.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_relaxed);
    };
    SessionOutcome out = runRepairJob(job->spec, snapshotFile(job->id),
                                      on_gen, should_stop);
    if (out.state == JobState::Canceled &&
        !job->cancelRequested.load(std::memory_order_relaxed)) {
        // The engine stopped because the daemon is shutting down, not
        // because a client asked: the job stays resumable. Its state
        // file still says queued and its snapshot is durable.
        return;
    }
    queue_.setResult(*job, std::move(out.result));
    queue_.setState(*job, out.state, out.error);
    try {
        persistResult(*job);
    } catch (const std::exception &) {
        // The result stays queryable in-process; a restart will re-run
        // the job from its snapshot instead of replaying the result.
    }
}

void
Server::handleConnection(int fd)
{
    std::string payload;
    try {
        if (!readFrame(fd, payload)) {
            ::close(fd);
            return;
        }
        std::string why;
        Json hello;
        try {
            hello = Json::parse(payload);
        } catch (const std::exception &e) {
            writeFrame(fd,
                       makeError(errc::kBadRequest, e.what()).dump());
            ::close(fd);
            return;
        }
        if (!checkHello(hello, &why)) {
            writeFrame(
                fd, makeError(errc::kVersionMismatch, why).dump());
            ::close(fd);
            return;
        }
        Json reply = makeHello();
        reply["server"] = kServerName;
        writeFrame(fd, reply.dump());

        while (readFrame(fd, payload)) {
            Json msg;
            try {
                msg = Json::parse(payload);
            } catch (const std::exception &e) {
                writeFrame(
                    fd,
                    makeError(errc::kBadRequest, e.what()).dump());
                continue;
            }
            bool keep_open = true;
            Json resp = dispatch(msg, fd, keep_open);
            if (!resp.isNull())
                writeFrame(fd, resp.dump());
            if (!keep_open)
                break;
        }
    } catch (const std::exception &) {
        // Connection-level failure (peer vanished mid-frame, write
        // error): drop the connection; jobs are unaffected.
    }
    ::close(fd);
}

Json
Server::dispatch(const Json &msg, int fd, bool &keep_open)
{
    std::string type = msg.str("type");

    if (type == "submit") {
        JobSpec spec;
        try {
            const Json *body = msg.find("job");
            if (!body)
                throw std::runtime_error("submit needs a 'job' member");
            spec = jobSpecFromJson(*body);
        } catch (const std::exception &e) {
            return makeError(errc::kBadRequest, e.what());
        }
        auto admitted = queue_.submit(std::move(spec));
        if (const Rejection *rej = std::get_if<Rejection>(&admitted))
            return makeError(rej->code, rej->message);
        long id = std::get<long>(admitted);
        if (std::shared_ptr<Job> job = queue_.find(id)) {
            try {
                persistJob(*job);
            } catch (const std::exception &e) {
                // Not durable: admit it anyway but tell the client.
                Json resp = Json::object();
                resp["type"] = "submitted";
                resp["id"] = id;
                resp["durable"] = false;
                resp["warning"] = e.what();
                return resp;
            }
        }
        Json resp = Json::object();
        resp["type"] = "submitted";
        resp["id"] = id;
        resp["durable"] = true;
        return resp;
    }

    if (type == "status") {
        Json summary = queue_.summaryFor(msg.num("id", -1));
        if (summary.isNull())
            return makeError(errc::kUnknownJob,
                             "no job with id " +
                                 std::to_string(msg.num("id", -1)));
        Json resp = Json::object();
        resp["type"] = "status";
        resp["job"] = std::move(summary);
        return resp;
    }

    if (type == "list") {
        Json resp = Json::object();
        resp["type"] = "list";
        Json jobs = Json::array();
        for (Json &s : queue_.summaries())
            jobs.push(std::move(s));
        resp["jobs"] = std::move(jobs);
        return resp;
    }

    if (type == "cancel") {
        long id = msg.num("id", -1);
        std::string why;
        bool existed = queue_.find(id) != nullptr;
        if (!queue_.cancel(id, &why))
            return makeError(existed ? errc::kBadRequest
                                     : errc::kUnknownJob,
                             why);
        if (std::shared_ptr<Job> job = queue_.find(id)) {
            JobState state = JobState::Queued;
            Json result;
            std::string error;
            queue_.resultFor(id, &state, &result, &error);
            if (isTerminal(state)) {
                try {
                    persistResult(*job);
                } catch (const std::exception &) {
                }
            }
        }
        Json resp = Json::object();
        resp["type"] = "ok";
        resp["id"] = id;
        return resp;
    }

    if (type == "result") {
        long id = msg.num("id", -1);
        JobState state = JobState::Queued;
        Json result;
        std::string error;
        if (!queue_.resultFor(id, &state, &result, &error))
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        if (!isTerminal(state))
            return makeError(errc::kNotDone,
                             "job " + std::to_string(id) + " is " +
                                 jobStateName(state));
        Json resp = Json::object();
        resp["type"] = "result";
        resp["id"] = id;
        resp["state"] = jobStateName(state);
        resp["result"] = std::move(result);
        if (!error.empty())
            resp["error"] = error;
        return resp;
    }

    if (type == "subscribe") {
        long id = msg.num("id", -1);
        if (!queue_.find(id))
            return makeError(errc::kUnknownJob,
                             "no job with id " + std::to_string(id));
        // Stream the job's full ordered event history, then live
        // events, ending after the terminal state event.
        size_t have = 0;
        Json ev;
        while (queue_.waitEvent(id, have, &ev)) {
            writeFrame(fd, ev.dump());
            ++have;
        }
        Json done = Json::object();
        done["type"] = "end_of_stream";
        done["id"] = id;
        return done;
    }

    (void)keep_open;
    return makeError(errc::kBadRequest,
                     "unknown message type '" + type + "'");
}

} // namespace cirfix::service
