#pragma once

/**
 * @file
 * Fleet roles on top of the repair daemon: a *coordinator* owns the
 * JobQueue and durable state dir and shards jobs to *workers* over the
 * transport; workers execute repair sessions and stream progress (and
 * engine snapshots) back.
 *
 * Failure model, in one paragraph: every assignment is a lease
 * (jobqueue.h). A worker renews its lease with each progress frame and
 * with periodic heartbeats; a worker that dies, hangs, or partitions
 * misses its deadline and the coordinator re-queues the job, handing
 * the *coordinator-side* copy of its last generation snapshot to the
 * next claimant — which resumes bit-identically (the engine's existing
 * restart guarantee). A presumed-dead worker that comes back and tries
 * to commit gets lease_lost and discards the attempt. Net effect under
 * any combination of crashes and partitions: no job lost, no job run
 * to completion twice.
 *
 * The Worker here is the in-process implementation; `cirfix worker`
 * wraps it in a process. Coordinator-side connection handling lives in
 * Server (the coordinator *is* the daemon, with remote execution
 * capacity registered in a FleetRegistry).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/island.h"
#include "service/json.h"
#include "service/transport.h"

namespace cirfix::service {

/** Coordinator-side fleet policy. */
struct FleetConfig
{
    /** Lease duration handed to workers; renewed by every progress or
     *  heartbeat frame. Shorter = faster failover, more chatter. */
    double leaseSeconds = 3.0;
    /** Worker count below which the coordinator degrades admission
     *  (halved queue depth, rejections coded degraded). */
    int minWorkers = 1;
    /** true: jobs only run on remote workers (coordinator mode —
     *  submits with zero live workers are rejected with no_workers).
     *  false: the classic daemon; local worker threads execute jobs
     *  and remote workers are extra capacity. */
    bool requireWorkers = false;
};

/** Live remote-worker membership (one entry per worker *connection*;
 *  a reconnecting worker gets a fresh key so the old connection's
 *  leases can be requeued without touching the new one's). */
class FleetRegistry
{
  public:
    /** Register a connection; @return the unique worker key. */
    std::string workerConnected(const std::string &name);
    void workerDisconnected(const std::string &key);
    int workerCount();

  private:
    std::mutex mu_;
    std::unordered_set<std::string> workers_;
    uint64_t nextKey_ = 1;
};

// ---------------------------------------------------------------------------
// Island-job orchestration (coordinator side)

/** Wire codec for fleet cache entries: entries ride the snapshot
 *  variant-blob format (with an empty patch — the patch is identified
 *  by its key, which travels in the parallel @p keysOut array). */
std::string encodeCacheEntries(
    const std::vector<std::pair<std::string, core::FitnessCache::Entry>>
        &entries,
    Json *keysOut);
std::vector<std::pair<std::string, core::FitnessCache::Entry>>
decodeCacheEntries(const Json &keys, const std::string &blob);

/** Quarantine records <-> JSON ([{key, outcome, error}]). */
Json encodeQuarantineRecords(
    const std::vector<std::pair<std::string, core::QuarantineEntry>>
        &records);
std::vector<std::pair<std::string, core::QuarantineEntry>>
decodeQuarantineRecords(const Json &j);

/**
 * Coordinator-side orchestration of one K-island job: owns the
 * migration ledger (the epoch barrier), the fleet-shared fitness
 * store, and the per-island digests that assemble into the job's
 * terminal payload. The coordinator creates one per sharded job and
 * drives it from the migrate / cache_sync / done handlers; the ledger
 * is persisted at every sealed epoch (and every done-mark) so a
 * coordinator restart replays the exchange history instead of
 * inventing a new one. A ledger that fails to decode restarts the job
 * from scratch — deterministic, so the final result is unchanged.
 */
class IslandCoordinator
{
  public:
    IslandCoordinator(core::IslandConfig cfg, std::string ledgerPath);

    enum class Recovery { Fresh, Restored, Corrupt };
    /** Try to restore the durable ledger; Corrupt means the caller
     *  must discard the job's shard snapshots and start over. */
    Recovery recover();

    core::MigrationLedger &ledger() { return ledger_; }
    core::SharedFitnessStore &store() { return store_; }
    const core::IslandConfig &config() const { return cfg_; }

    /** Handle a worker migrate frame (lease already validated):
     *  replay audits, elite submission + barrier poll. @return the
     *  reply payload (ok{wait} / migrants{stop, blob}). */
    Json handleMigrate(const Json &msg);
    /** Handle a worker cache_sync frame: publish + lookup. */
    Json handleCacheSync(const Json &msg);

    /** An island shard committed its done frame. */
    void shardDone(int island, const Json &digest, Json result,
                   const std::string &error);
    /** Settle islands that will never run (canceled before claim). */
    void shardReaped(int island);

    bool allDone();
    /** Assemble the terminal payload once allDone(): the winning
     *  island's result plus the islands block (fingerprint included).
     *  Returns Null and fills @p error when any shard failed. */
    Json assemble(uint64_t seed, std::string *error);

    /** Durably persist the ledger now (atomic rename). A no-op after
     *  retire(): a late shard frame racing the job's assembly must not
     *  resurrect the ledger file the assembly just removed. */
    void persist();
    void removeLedgerFile();
    /** Remove the ledger file and permanently disable persist().
     *  Called exactly once, when the assembled job goes terminal. */
    void retire();

  private:
    core::IslandConfig cfg_;
    std::string path_;
    core::MigrationLedger ledger_;
    core::SharedFitnessStore store_;
    std::mutex mu_;
    bool retired_ = false;  //!< job assembled; persist() disabled
    std::set<int> persistedEpochs_;  //!< epochs already durable
    std::map<int, Json> digests_;
    std::map<int, Json> results_;
    std::string failure_;  //!< first shard failure diagnostic
};

/** Worker-side knobs. */
struct WorkerConfig
{
    std::string coordinator;  //!< address string ("unix:…"/"tcp:…")
    std::string name = "worker";
    /** Local scratch dir for per-job snapshots. */
    std::string workDir;
    /** Long-poll budget per claim request. */
    double claimWaitSeconds = 0.5;
    /** Per-frame I/O deadline on the coordinator connection (must
     *  exceed claimWaitSeconds or claims would time out). */
    double ioTimeoutSeconds = 10.0;
    /** Reconnect policy after a transport failure. */
    RetryPolicy retry{/*maxAttempts=*/0x7fffffff,
                      /*connectTimeout=*/5.0,
                      /*initialDelay=*/0.05,
                      /*maxDelay=*/1.0,
                      /*multiplier=*/2.0,
                      /*jitterSeed=*/0x9e3779b97f4a7c15ull};
};

/** Worker-side observability (fleet_bench and the chaos tests). */
struct WorkerStats
{
    uint64_t jobsCompleted = 0;  //!< done frames accepted
    uint64_t jobsAbandoned = 0;  //!< lease lost / link died mid-job
    uint64_t leasesLost = 0;     //!< lease_lost replies received
    uint64_t reconnects = 0;     //!< successful re-dials after the 1st
};

/**
 * A fleet worker: claims jobs from the coordinator, executes them with
 * the same session layer the daemon uses, streams per-generation
 * progress + snapshots, commits results under its lease. Transport
 * failures abandon the in-flight attempt (the engine stops at the next
 * generation boundary) and re-dial with backoff — the coordinator's
 * lease machinery decides who finishes the job.
 */
class Worker
{
  public:
    explicit Worker(WorkerConfig cfg);

    /** Blocking claim-execute loop; returns when @p shouldExit goes
     *  true (checked between frames and between generations). */
    void run(const std::function<bool()> &shouldExit);

    /** Ask a run() in another thread to wind down at the next check
     *  (compose with the shouldExit callback). */
    void requestStop() { stopRequested_.store(true); }
    bool stopRequested() const { return stopRequested_.load(); }

    WorkerStats stats();
    const WorkerConfig &config() const { return cfg_; }

  private:
    struct Assignment
    {
        long id = 0;
        uint64_t leaseId = 0;
        double leaseSeconds = 3.0;
        std::string specJson;
        std::string snapshot;
        int island = -1;  //!< >= 0: island shard of a K-island job
    };

    /** One claim round-trip. @return false when no job was handed out
     *  (keep polling). @throws on transport failure. */
    bool claim(Conn &conn, Assignment *out);
    /** Execute one assignment; returns normally whether the job
     *  completed, was canceled, or the lease was lost. @throws only
     *  on unexpected local failures (not transport ones). */
    void execute(Conn &conn, const Assignment &a,
                 const std::function<bool()> &shouldExit);
    /** Island-shard variant of execute(): same lease discipline, plus
     *  blocking migrate barriers and cache_sync fitness sharing. */
    void executeShard(Conn &conn, const Assignment &a,
                      const std::function<bool()> &shouldExit);

    std::string snapshotPath(long id, int island = -1) const;

    WorkerConfig cfg_;
    std::atomic<bool> stopRequested_{false};
    std::mutex statsMu_;
    WorkerStats stats_;
};

} // namespace cirfix::service
