#include "service/netfault.h"

namespace cirfix::service {

NetFaultInjector &
NetFaultInjector::instance()
{
    static NetFaultInjector injector;
    return injector;
}

void
NetFaultInjector::arm(const NetFaultPlan &plan)
{
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    connects_ = writes_ = reads_ = 0;
    hits_ = NetFaultCounters{};
    armed_.store(plan.any(), std::memory_order_relaxed);
}

void
NetFaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_.store(false, std::memory_order_relaxed);
    plan_ = NetFaultPlan{};
}

bool
NetFaultInjector::fires(uint64_t at, uint64_t op) const
{
    if (at == 0)
        return false;
    return plan_.every ? (op % at) == 0 : op == at;
}

bool
NetFaultInjector::onConnect()
{
    if (!armed())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    ++connects_;
    if (fires(plan_.refuseConnectAt, connects_)) {
        ++hits_.connectsRefused;
        return true;
    }
    return false;
}

NetFaultAction
NetFaultInjector::onWriteFrame()
{
    if (!armed())
        return NetFaultAction::None;
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed))
        return NetFaultAction::None;
    ++writes_;
    if (fires(plan_.dropWriteAt, writes_)) {
        ++hits_.writesDropped;
        return NetFaultAction::Drop;
    }
    if (fires(plan_.partialWriteAt, writes_)) {
        ++hits_.writesTruncated;
        return NetFaultAction::Partial;
    }
    if (fires(plan_.stallWriteAt, writes_)) {
        ++hits_.writeStalls;
        return NetFaultAction::Stall;
    }
    return NetFaultAction::None;
}

NetFaultAction
NetFaultInjector::onReadFrame()
{
    if (!armed())
        return NetFaultAction::None;
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed))
        return NetFaultAction::None;
    ++reads_;
    if (fires(plan_.dropReadAt, reads_)) {
        ++hits_.readsDropped;
        return NetFaultAction::Drop;
    }
    if (fires(plan_.stallReadAt, reads_)) {
        ++hits_.readStalls;
        return NetFaultAction::Stall;
    }
    return NetFaultAction::None;
}

double
NetFaultInjector::stallSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return plan_.stallSeconds;
}

NetFaultCounters
NetFaultInjector::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

} // namespace cirfix::service
