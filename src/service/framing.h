#pragma once

/**
 * @file
 * Frame layer of the repair-service wire protocol.
 *
 * Every protocol message travels as one frame on a stream socket:
 * a 4-byte big-endian payload length followed by that many bytes of
 * UTF-8 JSON. Length-prefixing makes message boundaries explicit (no
 * sentinel scanning in payloads that embed whole Verilog sources) and
 * lets the reader pre-size its buffer.
 *
 * Both directions handle the hard stream cases: writeFrame() loops
 * over short writes and EINTR, readFrame() loops over short reads,
 * distinguishes clean EOF (between frames — a peer hanging up) from
 * truncation (mid-frame — an error), and rejects frames larger than
 * kMaxFrameBytes so a corrupt or hostile length prefix cannot make
 * the daemon allocate unbounded memory.
 *
 * Failures are typed, because callers react differently to each:
 *
 *  - ConnectionClosed — the peer vanished (EPIPE/ECONNRESET on write,
 *    EOF mid-frame on read). Writing to a disconnected peer uses
 *    MSG_NOSIGNAL plus a short-write loop, so it surfaces here as an
 *    exception and never as a process-killing SIGPIPE.
 *  - FrameTimeout — the optional deadline expired with the frame
 *    still incomplete. The fd is left mid-frame: the only safe
 *    recovery is closing the connection.
 *  - FrameError — protocol damage (oversized or corrupt length
 *    prefix) and every other I/O failure; also the base class.
 *
 * Deadlines are per *frame*: a deadline of 5s bounds the whole
 * read/write of one frame, not each syscall, so a peer that dribbles
 * one byte every 4s cannot hold a connection hostage.
 */

#include <cstddef>
#include <stdexcept>
#include <string>

namespace cirfix::service {

/** Upper bound on one frame's payload (largest legitimate message is
 *  a submit carrying a design + oracle; 64 MiB is orders of magnitude
 *  above any benchmark and still a safe allocation). */
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/** Base class of every framing failure (I/O errors, bad prefixes). */
class FrameError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The peer disconnected: EPIPE/ECONNRESET on a write, or EOF arrived
 *  mid-frame on a read. A clean EOF *between* frames is not an error
 *  (readFrame returns false instead). */
class ConnectionClosed : public FrameError
{
  public:
    using FrameError::FrameError;
};

/** The per-frame deadline expired. The stream position is now
 *  mid-frame and unrecoverable; close the connection. */
class FrameTimeout : public FrameError
{
  public:
    using FrameError::FrameError;
};

/**
 * Write one frame. Loops until the length prefix and full payload are
 * on the wire (short writes, EINTR). Uses MSG_NOSIGNAL so a peer that
 * hung up yields ConnectionClosed instead of SIGPIPE.
 * @param deadlineSeconds whole-frame write budget; 0 blocks forever.
 * @throws FrameError on oversized payload or I/O failure,
 *         ConnectionClosed when the peer is gone, FrameTimeout on
 *         deadline expiry.
 */
void writeFrame(int fd, const std::string &payload,
                double deadlineSeconds = 0.0);

/**
 * Read one frame into @p payload.
 * @param deadlineSeconds whole-frame read budget; 0 blocks forever.
 * @return true on a complete frame; false on clean EOF at a frame
 *         boundary (the peer closed between messages).
 * @throws ConnectionClosed on EOF mid-frame, FrameError on an
 *         oversized length prefix or read error, FrameTimeout on
 *         deadline expiry.
 */
bool readFrame(int fd, std::string &payload,
               double deadlineSeconds = 0.0);

} // namespace cirfix::service
