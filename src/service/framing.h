#pragma once

/**
 * @file
 * Frame layer of the repair-service wire protocol.
 *
 * Every protocol message travels as one frame on a stream socket:
 * a 4-byte big-endian payload length followed by that many bytes of
 * UTF-8 JSON. Length-prefixing makes message boundaries explicit (no
 * sentinel scanning in payloads that embed whole Verilog sources) and
 * lets the reader pre-size its buffer.
 *
 * Both directions handle the hard stream cases: writeFrame() loops
 * over short writes and EINTR, readFrame() loops over short reads,
 * distinguishes clean EOF (between frames — a peer hanging up) from
 * truncation (mid-frame — an error), and rejects frames larger than
 * kMaxFrameBytes so a corrupt or hostile length prefix cannot make
 * the daemon allocate unbounded memory.
 */

#include <cstddef>
#include <string>

namespace cirfix::service {

/** Upper bound on one frame's payload (largest legitimate message is
 *  a submit carrying a design + oracle; 64 MiB is orders of magnitude
 *  above any benchmark and still a safe allocation). */
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/**
 * Write one frame. Loops until the length prefix and full payload are
 * on the wire (short writes, EINTR). Uses MSG_NOSIGNAL so a peer that
 * hung up yields an error instead of SIGPIPE.
 * @throws std::runtime_error on oversized payload or any send error.
 */
void writeFrame(int fd, const std::string &payload);

/**
 * Read one frame into @p payload.
 * @return true on a complete frame; false on clean EOF at a frame
 *         boundary (the peer closed between messages).
 * @throws std::runtime_error on EOF mid-frame, oversized length
 *         prefix, or any read error.
 */
bool readFrame(int fd, std::string &payload);

} // namespace cirfix::service
