#pragma once

/**
 * @file
 * Client side of the repair service: connect, handshake, speak frames.
 *
 * Client wraps one connection to a `cirfix serve` daemon or a fleet
 * coordinator, over a Unix-domain or TCP address (transport.h). The
 * constructor connects (bounded by a connect timeout, optionally with
 * retry/backoff) and completes the versioned hello exchange, so a
 * constructed Client is always protocol-compatible. The typed helpers
 * (submit/status/list/cancel/result) wrap one request/response round
 * trip each and convert error frames into ServiceError, which
 * preserves the wire error code — the CLI maps codes to exit codes.
 *
 * Timeouts: ClientOptions::ioTimeout bounds every frame read/write
 * after the handshake; expiry surfaces as FrameTimeout (framing.h).
 * The default of 0 blocks forever, which is what `cirfix watch`
 * without --timeout wants; the CLI's --timeout flag sets it.
 *
 * Idempotent submits: submit() can attach a request id. Retrying the
 * same id after a transport error (new connection, same id) returns
 * the originally assigned job id instead of enqueueing a duplicate —
 * the client-side half of the fleet's exactly-once submission story.
 *
 * subscribe() switches the connection into streaming mode: the caller
 * then recv()s event frames until the end_of_stream marker. The
 * connection stays usable for further requests afterwards.
 */

#include <memory>
#include <stdexcept>
#include <string>

#include "service/protocol.h"
#include "service/transport.h"

namespace cirfix::service {

/** An error frame from the server, code preserved. */
class ServiceError : public std::runtime_error
{
  public:
    ServiceError(std::string code, const std::string &message)
        : std::runtime_error(message), code_(std::move(code))
    {}
    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/** Connection-behavior knobs. */
struct ClientOptions
{
    /** Deadline for establishing the connection (per attempt). */
    double connectTimeout = 10.0;
    /** Per-frame I/O deadline after the handshake; 0 = block forever.
     *  Expiry throws FrameTimeout and poisons the connection. */
    double ioTimeout = 0.0;
    /** Connect attempts (bounded exponential backoff between them);
     *  1 = fail fast. */
    int connectAttempts = 1;
};

class Client
{
  public:
    /** Connect to the daemon at @p address ("unix:PATH", "tcp:h:p",
     *  or a bare socket path) and run the handshake.
     *  @throws std::runtime_error on connect/IO failure, ServiceError
     *  on a version mismatch. */
    explicit Client(const std::string &address,
                    const ClientOptions &opts = ClientOptions());
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** The server's hello frame (version, server name). */
    const Json &serverHello() const { return hello_; }

    // ---- raw frame interface ----
    void send(const Json &msg);
    /** @return false on clean EOF (server closed between frames). */
    bool recv(Json *out);
    /** send + recv; throws ServiceError if the reply is an error. */
    Json request(const Json &msg);

    // ---- typed conveniences ----
    /** @return the accepted job id; throws ServiceError (queue_full,
     *  budget_too_large, no_workers, degraded, bad_request) on
     *  rejection. A non-empty @p requestId makes the submit
     *  idempotent across retries/reconnects. */
    long submit(const JobSpec &spec, const std::string &requestId = "");
    Json status(long id);   //!< the job summary object
    Json list();            //!< array of job summaries
    void cancel(long id);
    /** Terminal payload; ServiceError not_done while the job lives. */
    Json result(long id);

    /** Start streaming job @p id's events: after this, recv() yields
     *  event frames; the stream ends with {"type":"end_of_stream"}. */
    void subscribe(long id);

    /** A process-unique idempotency key for submit(). */
    static std::string newRequestId();

  private:
    std::unique_ptr<Conn> conn_;
    Json hello_;
};

} // namespace cirfix::service
