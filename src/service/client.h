#pragma once

/**
 * @file
 * Client side of the repair service: connect, handshake, speak frames.
 *
 * Client wraps one connection to a `cirfix serve` daemon. The
 * constructor connects and completes the versioned hello exchange (so
 * a constructed Client is always protocol-compatible); the typed
 * helpers (submit/status/list/cancel/result) wrap one request/response
 * round trip each and convert error frames into ServiceError, which
 * preserves the wire error code — the CLI maps codes to exit codes.
 *
 * subscribe() switches the connection into streaming mode: the caller
 * then recv()s event frames until the end_of_stream marker. The
 * connection stays usable for further requests afterwards.
 */

#include <stdexcept>
#include <string>

#include "service/protocol.h"

namespace cirfix::service {

/** An error frame from the server, code preserved. */
class ServiceError : public std::runtime_error
{
  public:
    ServiceError(std::string code, const std::string &message)
        : std::runtime_error(message), code_(std::move(code))
    {}
    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

class Client
{
  public:
    /** Connect to the daemon at @p socketPath and run the handshake.
     *  @throws std::runtime_error on connect/IO failure, ServiceError
     *  on a version mismatch. */
    explicit Client(const std::string &socketPath);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** The server's hello frame (version, server name). */
    const Json &serverHello() const { return hello_; }

    // ---- raw frame interface ----
    void send(const Json &msg);
    /** @return false on clean EOF (server closed between frames). */
    bool recv(Json *out);
    /** send + recv; throws ServiceError if the reply is an error. */
    Json request(const Json &msg);

    // ---- typed conveniences ----
    /** @return the accepted job id; throws ServiceError (queue_full,
     *  budget_too_large, bad_request) on rejection. */
    long submit(const JobSpec &spec);
    Json status(long id);   //!< the job summary object
    Json list();            //!< array of job summaries
    void cancel(long id);
    /** Terminal payload; ServiceError not_done while the job lives. */
    Json result(long id);

    /** Start streaming job @p id's events: after this, recv() yields
     *  event frames; the stream ends with {"type":"end_of_stream"}. */
    void subscribe(long id);

  private:
    int fd_ = -1;
    Json hello_;
};

} // namespace cirfix::service
