#include "service/transport.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/netfault.h"

namespace cirfix::service {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw TransportError(what + ": " + std::strerror(errno));
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fail("fcntl O_NONBLOCK");
}

void
setCloexec(int fd)
{
    int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

sockaddr_un
unixSockaddr(const std::string &path)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path))
        throw TransportError("unix socket path too long: " + path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

/** Resolve a TCP host:port to the first usable IPv4/IPv6 address. */
struct ResolvedAddr
{
    sockaddr_storage storage{};
    socklen_t len = 0;
    int family = AF_INET;
};

ResolvedAddr
resolveTcp(const std::string &host, int port)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0)
        throw TransportError("cannot resolve tcp:" + host + ":" +
                             service + ": " + ::gai_strerror(rc));
    ResolvedAddr out;
    out.family = res->ai_family;
    out.len = static_cast<socklen_t>(res->ai_addrlen);
    std::memcpy(&out.storage, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    return out;
}

/** Apply one injected fault to a framed operation on @p fd.
 *  @return true when the operation should proceed normally. */
bool
applyFault(int fd, NetFaultAction action, bool isWrite,
           const std::string *payload)
{
    switch (action) {
    case NetFaultAction::None:
        return true;
    case NetFaultAction::Stall:
        std::this_thread::sleep_for(std::chrono::duration<double>(
            NetFaultInjector::instance().stallSeconds()));
        return true;
    case NetFaultAction::Partial:
        if (isWrite && payload) {
            // Put the length prefix plus half the payload on the wire,
            // then sever the connection: the reader must see a
            // mid-frame truncation, never a clean frame boundary.
            uint32_t n = static_cast<uint32_t>(payload->size());
            char prefix[4] = {static_cast<char>(n >> 24),
                              static_cast<char>(n >> 16),
                              static_cast<char>(n >> 8),
                              static_cast<char>(n)};
            (void)::send(fd, prefix, sizeof prefix, MSG_NOSIGNAL);
            if (n > 0)
                (void)::send(fd, payload->data(), n / 2, MSG_NOSIGNAL);
        }
        ::shutdown(fd, SHUT_RDWR);
        throw ConnectionClosed(
            "injected fault: partial frame then disconnect");
    case NetFaultAction::Drop:
        ::shutdown(fd, SHUT_RDWR);
        throw ConnectionClosed(isWrite
                                   ? "injected fault: write dropped"
                                   : "injected fault: read dropped");
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------------------
// Address

Address
Address::parse(const std::string &text)
{
    if (text.empty())
        throw TransportError("empty address");
    Address a;
    if (text.rfind("unix:", 0) == 0) {
        a.kind = Kind::Unix;
        a.path = text.substr(5);
        if (a.path.empty())
            throw TransportError("unix address missing path: " + text);
        return a;
    }
    if (text.rfind("tcp:", 0) == 0) {
        a.kind = Kind::Tcp;
        std::string rest = text.substr(4);
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            throw TransportError(
                "tcp address must be tcp:host:port, got: " + text);
        a.host = rest.substr(0, colon);
        std::string portText = rest.substr(colon + 1);
        char *end = nullptr;
        long port = std::strtol(portText.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || port < 0 || port > 65535)
            throw TransportError("bad tcp port in address: " + text);
        a.port = static_cast<int>(port);
        return a;
    }
    // Bare paths stay valid so existing --socket flags keep working.
    a.kind = Kind::Unix;
    a.path = text;
    return a;
}

std::string
Address::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// Conn

Conn::~Conn()
{
    close();
}

void
Conn::writeFrame(const std::string &payload)
{
    auto &inj = NetFaultInjector::instance();
    if (inj.armed())
        applyFault(fd_, inj.onWriteFrame(), /*isWrite=*/true, &payload);
    cirfix::service::writeFrame(fd_, payload, ioDeadline_);
}

bool
Conn::readFrame(std::string *payload)
{
    auto &inj = NetFaultInjector::instance();
    if (inj.armed())
        applyFault(fd_, inj.onReadFrame(), /*isWrite=*/false, nullptr);
    return cirfix::service::readFrame(fd_, *payload, ioDeadline_);
}

void
Conn::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---------------------------------------------------------------------------
// dial

std::unique_ptr<Conn>
dial(const Address &addr, double timeoutSeconds)
{
    if (NetFaultInjector::instance().armed() &&
        NetFaultInjector::instance().onConnect())
        throw TransportError("injected fault: connection refused to " +
                             addr.str());

    int fd = -1;
    sockaddr_storage sa{};
    socklen_t saLen = 0;
    if (addr.kind == Address::Kind::Unix) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket(AF_UNIX)");
        sockaddr_un un = unixSockaddr(addr.path);
        std::memcpy(&sa, &un, sizeof un);
        saLen = sizeof un;
    } else {
        ResolvedAddr resolved;
        try {
            resolved = resolveTcp(addr.host, addr.port);
        } catch (...) {
            throw;
        }
        fd = ::socket(resolved.family, SOCK_STREAM, 0);
        if (fd < 0)
            fail("socket(tcp)");
        sa = resolved.storage;
        saLen = resolved.len;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    setCloexec(fd);

    // Nonblocking connect + poll bounds establishment by the deadline;
    // the fd goes back to blocking afterward (framed I/O does its own
    // deadline handling via poll + MSG_DONTWAIT).
    setNonBlocking(fd);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&sa), saLen);
    if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
        int err = errno;
        ::close(fd);
        errno = err;
        fail("connect to " + addr.str());
    }
    if (rc < 0) {
        int timeoutMs = timeoutSeconds > 0.0
                            ? static_cast<int>(timeoutSeconds * 1000.0)
                            : -1;
        pollfd pfd{fd, POLLOUT, 0};
        int pr;
        do {
            pr = ::poll(&pfd, 1, timeoutMs);
        } while (pr < 0 && errno == EINTR);
        if (pr == 0) {
            ::close(fd);
            throw DialTimeout("connect to " + addr.str() +
                              " timed out");
        }
        if (pr < 0) {
            int err = errno;
            ::close(fd);
            errno = err;
            fail("poll during connect to " + addr.str());
        }
        int soErr = 0;
        socklen_t len = sizeof soErr;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
        if (soErr != 0) {
            ::close(fd);
            throw TransportError("connect to " + addr.str() + ": " +
                                 std::strerror(soErr));
        }
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    return std::make_unique<Conn>(fd);
}

std::unique_ptr<Conn>
dialRetry(const Address &addr, const RetryPolicy &policy,
          int *attemptsOut)
{
    uint64_t jitterState =
        policy.jitterSeed ? policy.jitterSeed : 0x9e3779b97f4a7c15ull;
    auto nextJitter = [&jitterState]() {
        // xorshift64*: deterministic per seed, good enough to spread
        // reconnect storms; maps to a factor in [0.5, 1.5).
        jitterState ^= jitterState >> 12;
        jitterState ^= jitterState << 25;
        jitterState ^= jitterState >> 27;
        uint64_t r = jitterState * 0x2545f4914f6cdd1dull;
        return 0.5 + static_cast<double>(r >> 11) /
                         static_cast<double>(1ull << 53);
    };

    int attempts = std::max(1, policy.maxAttempts);
    double delay = policy.initialDelay;
    std::string lastError;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        try {
            auto conn = dial(addr, policy.connectTimeout);
            if (attemptsOut)
                *attemptsOut = attempt;
            return conn;
        } catch (const TransportError &e) {
            lastError = e.what();
        }
        if (attempt == attempts)
            break;
        double sleepFor = std::min(delay, policy.maxDelay) * nextJitter();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleepFor));
        delay *= policy.multiplier;
    }
    if (attemptsOut)
        *attemptsOut = attempts;
    throw TransportError("connect to " + addr.str() + " failed after " +
                         std::to_string(attempts) +
                         " attempt(s): " + lastError);
}

// ---------------------------------------------------------------------------
// Listener

Listener::~Listener()
{
    close();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        addr_ = other.addr_;
        other.fd_ = -1;
        other.addr_ = Address{};
    }
    return *this;
}

Listener
Listener::bind(const Address &addr, int backlog)
{
    Listener l;
    l.addr_ = addr;
    if (addr.kind == Address::Kind::Unix) {
        l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (l.fd_ < 0)
            fail("socket(AF_UNIX)");
        sockaddr_un un = unixSockaddr(addr.path);
        ::unlink(addr.path.c_str()); // stale socket from a killed run
        if (::bind(l.fd_, reinterpret_cast<sockaddr *>(&un),
                   sizeof un) < 0) {
            int err = errno;
            ::close(l.fd_);
            l.fd_ = -1;
            errno = err;
            fail("bind " + addr.str());
        }
    } else {
        ResolvedAddr resolved = resolveTcp(addr.host, addr.port);
        l.fd_ = ::socket(resolved.family, SOCK_STREAM, 0);
        if (l.fd_ < 0)
            fail("socket(tcp)");
        int one = 1;
        ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(l.fd_,
                   reinterpret_cast<sockaddr *>(&resolved.storage),
                   resolved.len) < 0) {
            int err = errno;
            ::close(l.fd_);
            l.fd_ = -1;
            errno = err;
            fail("bind " + addr.str());
        }
        // Recover the kernel-chosen port when binding port 0.
        sockaddr_storage bound{};
        socklen_t boundLen = sizeof bound;
        if (::getsockname(l.fd_, reinterpret_cast<sockaddr *>(&bound),
                          &boundLen) == 0) {
            if (bound.ss_family == AF_INET)
                l.addr_.port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
            else if (bound.ss_family == AF_INET6)
                l.addr_.port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&bound)
                        ->sin6_port);
        }
    }
    setCloexec(l.fd_);
    setNonBlocking(l.fd_);
    if (::listen(l.fd_, backlog) < 0) {
        int err = errno;
        l.close();
        errno = err;
        fail("listen " + addr.str());
    }
    return l;
}

std::unique_ptr<Conn>
Listener::accept()
{
    while (true) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            setCloexec(fd);
            if (addr_.kind == Address::Kind::Tcp) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            return std::make_unique<Conn>(fd);
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return nullptr;
        fail("accept on " + addr_.str());
    }
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (addr_.kind == Address::Kind::Unix && !addr_.path.empty())
            ::unlink(addr_.path.c_str());
    }
}

} // namespace cirfix::service
