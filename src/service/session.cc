#include "service/session.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/snapshot.h"
#include "sim/elaborate.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cirfix::service {

using namespace cirfix;

core::EngineConfig
engineConfigFromSpec(const JobSpec &spec)
{
    core::EngineConfig cfg;
    cfg.popSize = spec.params.popSize;
    cfg.maxGenerations = spec.params.maxGenerations;
    cfg.maxSeconds = spec.params.maxSeconds;
    cfg.seed = spec.params.seed;
    cfg.numThreads = spec.params.numThreads;
    cfg.fitness.phi = spec.params.phi;
    cfg.evalDeadlineSeconds = spec.params.evalDeadlineSeconds;
    cfg.evalMemoryBudget = spec.params.evalMemoryBudget;
    return cfg;
}

core::IslandConfig
islandConfigFromSpec(const JobSpec &spec)
{
    core::IslandConfig ic;
    ic.islands = spec.params.islands;
    ic.migrationInterval = spec.params.migrationInterval;
    ic.migrantsPerIsland = spec.params.migrantsPerIsland;
    return ic;
}

namespace {

/** The submitted golden file holds replacement DUT module(s); reuse
 *  the testbench from the design source by keeping only the modules
 *  the golden file does not redefine (the CLI's --golden behavior). */
std::string
testbenchOnlySource(const verilog::SourceFile &design,
                    const verilog::SourceFile &golden)
{
    std::string out;
    for (auto &m : design.modules)
        if (!golden.findModule(m->name))
            out += verilog::print(*m) + "\n";
    return out;
}

} // namespace

JobInputs
buildJobInputs(const JobSpec &spec)
{
    JobInputs in;
    in.faulty = verilog::parse(spec.designSource);
    if (!in.faulty->findModule(spec.tbModule))
        throw std::runtime_error("testbench module '" + spec.tbModule +
                                 "' not found in the design source");
    if (!in.faulty->findModule(spec.dutModule))
        throw std::runtime_error("DUT module '" + spec.dutModule +
                                 "' not found in the design source");
    in.probe = sim::deriveProbeConfig(*in.faulty, spec.tbModule);
    if (!spec.oracleCsv.empty()) {
        in.oracle = sim::Trace::fromCsv(spec.oracleCsv);
    } else {
        auto golden_only = verilog::parse(spec.goldenSource);
        std::string golden_src =
            spec.goldenSource + "\n" +
            testbenchOnlySource(*in.faulty, *golden_only);
        std::shared_ptr<const verilog::SourceFile> golden =
            verilog::parse(golden_src);
        auto design = sim::elaborate(golden, spec.tbModule);
        sim::TraceRecorder rec(*design, in.probe);
        design->run();
        in.oracle = rec.takeTrace();
    }
    return in;
}

Json
resultToJson(const core::RepairResult &res)
{
    Json j = Json::object();
    j["found"] = res.found;
    j["stopped"] = res.stopped;
    j["generations"] = res.generations;
    j["fitness_evals"] = res.fitnessEvals;
    j["invalid_mutants"] = res.invalidMutants;
    j["total_mutants"] = res.totalMutants;
    j["seconds"] = res.seconds;
    if (res.found) {
        j["patch"] = res.patch.describe();
        j["repaired_source"] = res.repairedSource;
    }
    Json fit = Json::object();
    fit["fitness"] = res.finalFitness.fitness;
    fit["sum"] = res.finalFitness.sum;
    fit["total"] = res.finalFitness.total;
    j["final_fitness"] = std::move(fit);
    Json traj = Json::array();
    for (const auto &[at, best] : res.fitnessTrajectory) {
        Json point = Json::array();
        point.push(at);
        point.push(best);
        traj.push(std::move(point));
    }
    j["trajectory"] = std::move(traj);
    Json cache = Json::object();
    cache["hits"] = res.cache.hits;
    cache["misses"] = res.cache.misses;
    cache["evictions"] = res.cache.evictions;
    j["cache"] = std::move(cache);
    Json outcomes = Json::object();
    for (int i = 0; i < core::kEvalOutcomeCount; ++i)
        outcomes[core::evalOutcomeName(
            static_cast<core::EvalOutcome>(i))] =
            res.outcomes.counts[static_cast<size_t>(i)];
    outcomes["quarantine_hits"] = res.outcomes.quarantineHits;
    j["outcomes"] = std::move(outcomes);
    return j;
}

namespace {

/** Bit-exact double transport (JSON %.17g is exact too, but hexfloat
 *  text is what islandFingerprint() hashes — ship the same form). */
std::string
hexDouble(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", d);
    return buf;
}

} // namespace

Json
migrantRecordsToJson(const std::vector<core::MigrantRecord> &ledger)
{
    Json out = Json::array();
    for (const core::MigrantRecord &rec : ledger) {
        Json r = Json::object();
        r["epoch"] = rec.epoch;
        Json keys = Json::array();
        for (const std::string &k : rec.keys)
            keys.push(k);
        r["keys"] = std::move(keys);
        out.push(std::move(r));
    }
    return out;
}

std::vector<core::MigrantRecord>
migrantRecordsFromJson(const Json &j)
{
    std::vector<core::MigrantRecord> out;
    if (!j.isArray())
        return out;
    for (const Json &r : j.items()) {
        core::MigrantRecord rec;
        rec.epoch = static_cast<int>(r.num("epoch", 0));
        if (const Json *keys = r.find("keys"))
            for (const Json &k : keys->items())
                rec.keys.push_back(k.asString());
        out.push_back(std::move(rec));
    }
    return out;
}

Json
islandDigestToJson(const core::IslandStats &st)
{
    Json j = Json::object();
    j["island"] = st.island;
    j["generations"] = st.generations;
    j["found"] = st.found;
    j["stopped"] = st.stopped;
    j["best_fitness"] = st.bestFitness;
    j["best_fitness_hex"] = hexDouble(st.bestFitness);
    j["patch_key"] = st.patchKey;
    j["ledger"] = migrantRecordsToJson(st.ledger);
    j["fitness_evals"] = st.fitnessEvals;
    j["fleet_cache_hits"] = st.fleetCacheHits;
    j["fleet_quarantine_hits"] = st.fleetQuarantineHits;
    return j;
}

core::IslandStats
islandStatsFromDigest(const Json &digest)
{
    if (!digest.isObject())
        throw std::runtime_error("island digest must be an object");
    core::IslandStats st;
    st.island = static_cast<int>(digest.num("island", -1));
    if (st.island < 0)
        throw std::runtime_error("island digest missing 'island'");
    st.generations = static_cast<int>(digest.num("generations", 0));
    st.found = digest.flag("found");
    st.stopped = digest.flag("stopped");
    std::string hex = digest.str("best_fitness_hex");
    st.bestFitness = hex.empty() ? digest.real("best_fitness", 0.0)
                                 : std::strtod(hex.c_str(), nullptr);
    st.patchKey = digest.str("patch_key");
    if (const Json *ledger = digest.find("ledger"))
        st.ledger = migrantRecordsFromJson(*ledger);
    st.fitnessEvals = digest.num("fitness_evals", 0);
    st.fleetCacheHits = digest.num("fleet_cache_hits", 0);
    st.fleetQuarantineHits = digest.num("fleet_quarantine_hits", 0);
    return st;
}

Json
islandBlockJson(
    uint64_t seed, const core::IslandConfig &cfg, bool found,
    int winnerIsland, int winnerEpoch,
    const std::vector<core::IslandStats> &islands,
    const std::vector<std::pair<int, std::vector<std::string>>>
        &broadcasts,
    const core::MigrationStats &migration, uint64_t fingerprint)
{
    Json j = Json::object();
    j["count"] = cfg.islands;
    j["migration_interval"] = cfg.migrationInterval;
    j["migrants_per_island"] = cfg.migrantsPerIsland;
    j["seed"] = static_cast<long long>(seed);
    j["found"] = found;
    j["winner_island"] = winnerIsland;
    j["winner_epoch"] = winnerEpoch;
    j["fingerprint"] = std::to_string(fingerprint);
    Json digests = Json::array();
    for (const core::IslandStats &st : islands)
        digests.push(islandDigestToJson(st));
    j["islands"] = std::move(digests);
    Json bc = Json::array();
    for (const auto &[epoch, keys] : broadcasts) {
        Json b = Json::object();
        b["epoch"] = epoch;
        Json ks = Json::array();
        for (const std::string &k : keys)
            ks.push(k);
        b["keys"] = std::move(ks);
        bc.push(std::move(b));
    }
    j["broadcasts"] = std::move(bc);
    Json mig = Json::object();
    mig["elites_exported"] = migration.elitesExported;
    mig["migrants_broadcast"] = migration.migrantsBroadcast;
    mig["migrant_duplicates"] = migration.migrantDuplicates;
    mig["elites_lost"] = migration.elitesLost;
    j["migration"] = std::move(mig);
    return j;
}

Json
islandOutcomeToJson(const core::IslandOutcome &outcome, uint64_t seed,
                    const core::IslandConfig &cfg)
{
    Json j = resultToJson(outcome.result);
    j["islands"] = islandBlockJson(
        seed, cfg, outcome.found, outcome.winnerIsland,
        outcome.winnerEpoch, outcome.islands, outcome.broadcasts,
        outcome.migration, outcome.fingerprint);
    return j;
}

SessionOutcome
runRepairJob(const JobSpec &spec, const std::string &snapshotPath,
             const std::function<void(const core::GenerationStats &)>
                 &onGeneration,
             const std::function<bool()> &shouldStop,
             const std::string &provenance)
{
    SessionOutcome out;
    try {
        JobInputs in = buildJobInputs(spec);
        core::EngineConfig cfg = engineConfigFromSpec(spec);
        if (spec.params.islands > 1) {
            // In-process K-island run (classic daemon / CLI path): the
            // islands, the barrier and the shared fitness store all
            // live in this process. Checkpoints land in a per-job
            // directory next to where the plain snapshot would go.
            core::IslandConfig ic = islandConfigFromSpec(spec);
            cfg.snapshotProvenance = provenance;
            std::string dir;
            if (!snapshotPath.empty()) {
                dir = snapshotPath + ".d";
                std::filesystem::create_directories(dir);
            }
            core::IslandOutcome outcome = core::runIslands(
                in.faulty, spec.tbModule, spec.dutModule, in.probe,
                in.oracle, cfg, ic, dir, onGeneration, shouldStop);
            out.result = islandOutcomeToJson(outcome, cfg.seed, ic);
            out.state = outcome.result.stopped && !outcome.found
                            ? JobState::Canceled
                            : JobState::Done;
            return out;
        }
        cfg.snapshotPath = snapshotPath;
        cfg.snapshotProvenance = provenance;
        cfg.snapshotEvery = 1;
        cfg.onGeneration = onGeneration;
        cfg.shouldStop = shouldStop;
        core::RepairEngine engine(in.faulty, spec.tbModule,
                                  spec.dutModule, in.probe,
                                  std::move(in.oracle), cfg);
        core::RepairResult res;
        if (!snapshotPath.empty() &&
            std::filesystem::exists(snapshotPath)) {
            // Daemon restart: continue the interrupted run exactly
            // where its last durable generation left it.
            core::EngineState state = core::loadSnapshot(snapshotPath);
            res = engine.resume(state);
        } else {
            res = engine.run();
        }
        out.result = resultToJson(res);
        // A stop that the cancel flag (or daemon shutdown) requested is
        // a cancel, not a completed search.
        out.state = res.stopped ? JobState::Canceled : JobState::Done;
    } catch (const std::exception &e) {
        out.state = JobState::Failed;
        out.error = e.what();
    } catch (...) {
        out.state = JobState::Failed;
        out.error = "unknown exception";
    }
    return out;
}

IslandShardOutcome
runIslandShard(const JobSpec &spec, int island,
               const std::string &snapshotPath,
               const IslandShardHooks &hooks,
               const std::function<void(const core::GenerationStats &)>
                   &onGeneration,
               const std::function<bool()> &shouldStop,
               const std::string &provenance)
{
    IslandShardOutcome out;
    // Mirrors runIslands()'s per-island wiring exactly — the engine
    // config, elite selection and stop handling must match bit for bit
    // or the distributed fingerprint diverges from the in-process one.
    bool migrationStop = false;
    try {
        JobInputs in = buildJobInputs(spec);
        core::IslandConfig ic = islandConfigFromSpec(spec);
        core::EngineConfig cfg = core::deriveIslandEngineConfig(
            engineConfigFromSpec(spec), ic, island);
        cfg.snapshotPath = snapshotPath;
        cfg.snapshotProvenance = provenance;
        cfg.snapshotEvery = 1;
        cfg.onGeneration = onGeneration;
        cfg.shouldStop = [&] {
            return migrationStop || (shouldStop && shouldStop());
        };
        cfg.onMigration =
            [&](int epoch, const std::vector<core::Variant> &popn) {
                std::vector<core::Variant> elites = core::selectElites(
                    popn, ic.migrantsPerIsland);
                bool stop = false;
                std::vector<core::Variant> migrants = hooks.exchange(
                    epoch, std::move(elites), &stop);
                if (stop)
                    migrationStop = true;
                return migrants;
            };
        if (hooks.lookup)
            cfg.fleetLookup = hooks.lookup;
        if (hooks.publish)
            cfg.fleetPublish = hooks.publish;
        core::RepairEngine engine(in.faulty, spec.tbModule,
                                  spec.dutModule, in.probe,
                                  std::move(in.oracle), cfg);
        core::RepairResult res;
        if (!snapshotPath.empty() &&
            std::filesystem::exists(snapshotPath)) {
            core::EngineState state = core::loadSnapshot(snapshotPath);
            if (hooks.replay)
                hooks.replay(state.migrantLedger);
            res = engine.resume(state);
        } else {
            res = engine.run();
        }
        core::IslandStats st;
        st.island = island;
        st.generations = res.generations;
        st.found = res.found;
        st.stopped = res.stopped;
        st.bestFitness = res.fitnessTrajectory.empty()
                             ? 0.0
                             : res.fitnessTrajectory.back().second;
        if (res.found)
            st.patchKey = res.patch.key();
        st.ledger = res.migrantLedger;
        st.fitnessEvals = res.fitnessEvals;
        st.fleetCacheHits = res.fleetCacheHits;
        st.fleetQuarantineHits = res.fleetQuarantineHits;
        out.digest = islandDigestToJson(st);
        out.session.result = resultToJson(res);
        out.session.state = JobState::Done;
        out.stopped = res.stopped;
    } catch (const std::exception &e) {
        out.session.state = JobState::Failed;
        out.session.error = e.what();
    } catch (...) {
        out.session.state = JobState::Failed;
        out.session.error = "unknown exception";
    }
    return out;
}

} // namespace cirfix::service
