#include "service/session.h"

#include <filesystem>

#include "core/snapshot.h"
#include "sim/elaborate.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cirfix::service {

using namespace cirfix;

core::EngineConfig
engineConfigFromSpec(const JobSpec &spec)
{
    core::EngineConfig cfg;
    cfg.popSize = spec.params.popSize;
    cfg.maxGenerations = spec.params.maxGenerations;
    cfg.maxSeconds = spec.params.maxSeconds;
    cfg.seed = spec.params.seed;
    cfg.numThreads = spec.params.numThreads;
    cfg.fitness.phi = spec.params.phi;
    cfg.evalDeadlineSeconds = spec.params.evalDeadlineSeconds;
    cfg.evalMemoryBudget = spec.params.evalMemoryBudget;
    return cfg;
}

namespace {

/** The submitted golden file holds replacement DUT module(s); reuse
 *  the testbench from the design source by keeping only the modules
 *  the golden file does not redefine (the CLI's --golden behavior). */
std::string
testbenchOnlySource(const verilog::SourceFile &design,
                    const verilog::SourceFile &golden)
{
    std::string out;
    for (auto &m : design.modules)
        if (!golden.findModule(m->name))
            out += verilog::print(*m) + "\n";
    return out;
}

} // namespace

JobInputs
buildJobInputs(const JobSpec &spec)
{
    JobInputs in;
    in.faulty = verilog::parse(spec.designSource);
    if (!in.faulty->findModule(spec.tbModule))
        throw std::runtime_error("testbench module '" + spec.tbModule +
                                 "' not found in the design source");
    if (!in.faulty->findModule(spec.dutModule))
        throw std::runtime_error("DUT module '" + spec.dutModule +
                                 "' not found in the design source");
    in.probe = sim::deriveProbeConfig(*in.faulty, spec.tbModule);
    if (!spec.oracleCsv.empty()) {
        in.oracle = sim::Trace::fromCsv(spec.oracleCsv);
    } else {
        auto golden_only = verilog::parse(spec.goldenSource);
        std::string golden_src =
            spec.goldenSource + "\n" +
            testbenchOnlySource(*in.faulty, *golden_only);
        std::shared_ptr<const verilog::SourceFile> golden =
            verilog::parse(golden_src);
        auto design = sim::elaborate(golden, spec.tbModule);
        sim::TraceRecorder rec(*design, in.probe);
        design->run();
        in.oracle = rec.takeTrace();
    }
    return in;
}

Json
resultToJson(const core::RepairResult &res)
{
    Json j = Json::object();
    j["found"] = res.found;
    j["stopped"] = res.stopped;
    j["generations"] = res.generations;
    j["fitness_evals"] = res.fitnessEvals;
    j["invalid_mutants"] = res.invalidMutants;
    j["total_mutants"] = res.totalMutants;
    j["seconds"] = res.seconds;
    if (res.found) {
        j["patch"] = res.patch.describe();
        j["repaired_source"] = res.repairedSource;
    }
    Json fit = Json::object();
    fit["fitness"] = res.finalFitness.fitness;
    fit["sum"] = res.finalFitness.sum;
    fit["total"] = res.finalFitness.total;
    j["final_fitness"] = std::move(fit);
    Json traj = Json::array();
    for (const auto &[at, best] : res.fitnessTrajectory) {
        Json point = Json::array();
        point.push(at);
        point.push(best);
        traj.push(std::move(point));
    }
    j["trajectory"] = std::move(traj);
    Json cache = Json::object();
    cache["hits"] = res.cache.hits;
    cache["misses"] = res.cache.misses;
    cache["evictions"] = res.cache.evictions;
    j["cache"] = std::move(cache);
    Json outcomes = Json::object();
    for (int i = 0; i < core::kEvalOutcomeCount; ++i)
        outcomes[core::evalOutcomeName(
            static_cast<core::EvalOutcome>(i))] =
            res.outcomes.counts[static_cast<size_t>(i)];
    outcomes["quarantine_hits"] = res.outcomes.quarantineHits;
    j["outcomes"] = std::move(outcomes);
    return j;
}

SessionOutcome
runRepairJob(const JobSpec &spec, const std::string &snapshotPath,
             const std::function<void(const core::GenerationStats &)>
                 &onGeneration,
             const std::function<bool()> &shouldStop,
             const std::string &provenance)
{
    SessionOutcome out;
    try {
        JobInputs in = buildJobInputs(spec);
        core::EngineConfig cfg = engineConfigFromSpec(spec);
        cfg.snapshotPath = snapshotPath;
        cfg.snapshotProvenance = provenance;
        cfg.snapshotEvery = 1;
        cfg.onGeneration = onGeneration;
        cfg.shouldStop = shouldStop;
        core::RepairEngine engine(in.faulty, spec.tbModule,
                                  spec.dutModule, in.probe,
                                  std::move(in.oracle), cfg);
        core::RepairResult res;
        if (!snapshotPath.empty() &&
            std::filesystem::exists(snapshotPath)) {
            // Daemon restart: continue the interrupted run exactly
            // where its last durable generation left it.
            core::EngineState state = core::loadSnapshot(snapshotPath);
            res = engine.resume(state);
        } else {
            res = engine.run();
        }
        out.result = resultToJson(res);
        // A stop that the cancel flag (or daemon shutdown) requested is
        // a cancel, not a completed search.
        out.state = res.stopped ? JobState::Canceled : JobState::Done;
    } catch (const std::exception &e) {
        out.state = JobState::Failed;
        out.error = e.what();
    } catch (...) {
        out.state = JobState::Failed;
        out.error = "unknown exception";
    }
    return out;
}

} // namespace cirfix::service
