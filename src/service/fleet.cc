#include "service/fleet.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "service/protocol.h"
#include "service/session.h"

namespace cirfix::service {

namespace {

void
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " +
                                 path);
    }
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

} // namespace

// ---------------------------------------------------------------------------
// FleetRegistry

std::string
FleetRegistry::workerConnected(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    // The key embeds a connection serial so a reconnecting worker
    // never aliases its previous (possibly still-leased) incarnation.
    std::string key = (name.empty() ? "worker" : name) + "/" +
                      std::to_string(nextKey_++);
    workers_.insert(key);
    return key;
}

void
FleetRegistry::workerDisconnected(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    workers_.erase(key);
}

int
FleetRegistry::workerCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(workers_.size());
}

// ---------------------------------------------------------------------------
// Worker

Worker::Worker(WorkerConfig cfg) : cfg_(std::move(cfg)) {}

std::string
Worker::snapshotPath(long id) const
{
    return cfg_.workDir + "/job-" + std::to_string(id) + ".snap";
}

WorkerStats
Worker::stats()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

bool
Worker::claim(Conn &conn, Assignment *out)
{
    Json req = Json::object();
    req["type"] = "claim";
    req["wait_ms"] =
        static_cast<long long>(cfg_.claimWaitSeconds * 1000.0);
    conn.writeFrame(req.dump());
    std::string payload;
    if (!conn.readFrame(&payload))
        throw ConnectionClosed("coordinator closed during claim");
    Json reply = Json::parse(payload);
    std::string type = reply.str("type");
    if (type == "no_job")
        return false;
    if (type != "job")
        throw FrameError("unexpected claim reply '" + type + "'");
    out->id = reply.num("id", -1);
    out->leaseId = static_cast<uint64_t>(reply.num("lease_id", 0));
    out->leaseSeconds = reply.real("lease_seconds", 3.0);
    const Json *spec = reply.find("spec");
    if (out->id < 0 || out->leaseId == 0 || !spec)
        throw FrameError("malformed job frame from coordinator");
    out->specJson = spec->dump();
    out->snapshot = reply.str("snapshot");
    return true;
}

void
Worker::execute(Conn &conn, const Assignment &a,
                const std::function<bool()> &shouldExit)
{
    JobSpec spec = jobSpecFromJson(Json::parse(a.specJson));
    std::string snapPath = snapshotPath(a.id);
    if (!a.snapshot.empty())
        writeFileAtomic(snapPath, a.snapshot);  // resume hand-off
    else
        std::remove(snapPath.c_str());  // never resume a stale attempt

    // The engine thread (per-generation progress) and the heartbeat
    // thread share the coordinator connection; each request/response
    // exchange is atomic under this mutex, so replies cannot cross.
    std::mutex connMu;
    std::atomic<bool> abandoned{false};  //!< lease lost or link dead
    std::atomic<bool> cancel{false};     //!< coordinator-relayed cancel
    std::atomic<bool> jobDone{false};    //!< stops the heartbeat thread

    auto exchange = [&](const Json &req, Json *reply) -> bool {
        std::lock_guard<std::mutex> lock(connMu);
        if (abandoned.load(std::memory_order_relaxed))
            return false;
        try {
            conn.writeFrame(req.dump());
            std::string payload;
            if (!conn.readFrame(&payload))
                throw ConnectionClosed(
                    "coordinator closed mid-exchange");
            *reply = Json::parse(payload);
            return true;
        } catch (const std::exception &) {
            // Any transport damage mid-job: abandon the attempt and
            // let the lease decide the job's fate. Never guess.
            abandoned.store(true, std::memory_order_relaxed);
            return false;
        }
    };

    auto handleLeaseReply = [&](const Json &reply) {
        if (reply.str("type") == "error") {
            if (reply.str("code") == errc::kLeaseLost) {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.leasesLost;
            }
            abandoned.store(true, std::memory_order_relaxed);
            return;
        }
        if (reply.flag("cancel"))
            cancel.store(true, std::memory_order_relaxed);
    };

    // Heartbeats keep the lease alive across generations that outlast
    // it (a renewal every leaseSeconds/3 tolerates two lost beats).
    std::mutex hbMu;
    std::condition_variable hbCv;
    std::thread heartbeat([&] {
        auto period = std::chrono::duration<double>(
            std::max(0.05, a.leaseSeconds / 3.0));
        std::unique_lock<std::mutex> lock(hbMu);
        while (!hbCv.wait_for(lock, period, [&] {
            return jobDone.load(std::memory_order_relaxed);
        })) {
            lock.unlock();
            Json req = Json::object();
            req["type"] = "heartbeat";
            req["id"] = a.id;
            req["lease_id"] = static_cast<long long>(a.leaseId);
            Json reply;
            if (exchange(req, &reply))
                handleLeaseReply(reply);
            lock.lock();
        }
    });

    auto onGeneration = [&](const core::GenerationStats &gs) {
        Json req = Json::object();
        req["type"] = "progress";
        req["id"] = a.id;
        req["lease_id"] = static_cast<long long>(a.leaseId);
        req["generation"] = gs.generation;
        req["best_fitness"] = gs.bestFitness;
        req["fitness_evals"] = gs.fitnessEvals;
        req["invalid_mutants"] = gs.invalidMutants;
        req["total_mutants"] = gs.totalMutants;
        // The checkpoint is durable before onGeneration fires; ship it
        // so the coordinator can resume the job anywhere on failover.
        req["snapshot"] = slurpFile(snapPath);
        Json reply;
        if (exchange(req, &reply))
            handleLeaseReply(reply);
    };

    auto shouldStop = [&] {
        return abandoned.load(std::memory_order_relaxed) ||
               cancel.load(std::memory_order_relaxed) ||
               (shouldExit && shouldExit()) || stopRequested();
    };

    SessionOutcome out = runRepairJob(spec, snapPath, onGeneration,
                                      shouldStop, cfg_.name);

    {
        std::lock_guard<std::mutex> lock(hbMu);
        jobDone.store(true, std::memory_order_relaxed);
    }
    hbCv.notify_all();
    heartbeat.join();

    std::remove(snapPath.c_str());

    if (abandoned.load(std::memory_order_relaxed)) {
        // Lease lost or link dead: this attempt must not commit. The
        // coordinator already re-queued (or will, at lease expiry).
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    if (out.state == JobState::Canceled &&
        !cancel.load(std::memory_order_relaxed)) {
        // Stopped because the *worker* is winding down, not because
        // the client canceled: stay silent, keep the lease unrenewed,
        // and let the coordinator re-queue from its snapshot copy.
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }

    Json req = Json::object();
    req["type"] = "done";
    req["id"] = a.id;
    req["lease_id"] = static_cast<long long>(a.leaseId);
    req["state"] = jobStateName(out.state);
    req["result"] = std::move(out.result);
    if (!out.error.empty())
        req["error"] = out.error;
    Json reply;
    if (!exchange(req, &reply))
        return;  // commit lost in transit; lease arbitration decides
    if (reply.str("type") == "error") {
        handleLeaseReply(reply);
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.jobsCompleted;
}

void
Worker::run(const std::function<bool()> &shouldExit)
{
    namespace fs = std::filesystem;
    if (cfg_.workDir.empty())
        throw std::runtime_error("worker needs a work dir");
    fs::create_directories(cfg_.workDir);
    Address addr = Address::parse(cfg_.coordinator);

    auto exiting = [&] {
        return stopRequested() || (shouldExit && shouldExit());
    };

    bool everConnected = false;
    while (!exiting()) {
        std::unique_ptr<Conn> conn;
        try {
            // Bounded attempts per round so a dead coordinator never
            // wedges the worker past its exit check.
            RetryPolicy round = cfg_.retry;
            round.maxAttempts = std::min(cfg_.retry.maxAttempts, 8);
            conn = dialRetry(addr, round);
        } catch (const TransportError &) {
            continue;  // next round (exit check above)
        }
        conn->setIoDeadline(cfg_.ioTimeoutSeconds +
                            cfg_.claimWaitSeconds);
        try {
            conn->writeFrame(makeWorkerHello(cfg_.name).dump());
            std::string payload;
            if (!conn->readFrame(&payload))
                throw ConnectionClosed("coordinator closed at hello");
            Json hello = Json::parse(payload);
            if (hello.str("type") != "hello")
                throw FrameError("coordinator refused worker hello: " +
                                 hello.str("message"));
            if (everConnected) {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.reconnects;
            }
            everConnected = true;

            while (!exiting()) {
                Assignment a;
                if (!claim(*conn, &a))
                    continue;  // long-poll came back empty
                execute(*conn, a, shouldExit);
            }
            return;
        } catch (const std::exception &) {
            // Transport failure anywhere in the loop: drop the link
            // and re-dial. In-flight work was already abandoned by
            // execute()'s own error handling.
        }
    }
}

} // namespace cirfix::service
