#include "service/fleet.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/snapshot.h"
#include "service/protocol.h"
#include "service/session.h"

namespace cirfix::service {

namespace {

void
writeFileAtomic(const std::string &path, const std::string &data)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " +
                                 path);
    }
}

std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Epoch that generation count @p generations belongs to. */
int
epochOf(int generations, int interval)
{
    return interval > 0 ? (generations + interval - 1) / interval : 0;
}

} // namespace

// ---------------------------------------------------------------------------
// Cache-entry / quarantine wire codecs

std::string
encodeCacheEntries(
    const std::vector<std::pair<std::string, core::FitnessCache::Entry>>
        &entries,
    Json *keysOut)
{
    std::vector<core::Variant> carriers;
    carriers.reserve(entries.size());
    Json keys = Json::array();
    for (const auto &[key, entry] : entries) {
        core::Variant v;
        v.evaluated = true;
        v.valid = entry.valid;
        v.fit = entry.fit;
        v.trace = entry.trace;
        v.outcome = entry.outcome;
        v.error = entry.error;
        carriers.push_back(std::move(v));
        keys.push(key);
    }
    if (keysOut)
        *keysOut = std::move(keys);
    return core::encodeVariants(carriers);
}

std::vector<std::pair<std::string, core::FitnessCache::Entry>>
decodeCacheEntries(const Json &keys, const std::string &blob)
{
    std::vector<core::Variant> carriers = core::decodeVariants(blob);
    if (!keys.isArray() || keys.size() != carriers.size())
        throw std::runtime_error(
            "cache-entry key array does not match the entry blob");
    std::vector<std::pair<std::string, core::FitnessCache::Entry>> out;
    out.reserve(carriers.size());
    for (size_t i = 0; i < carriers.size(); ++i) {
        core::Variant &v = carriers[i];
        core::FitnessCache::Entry e;
        e.valid = v.valid;
        e.fit = v.fit;
        e.trace = std::move(v.trace);
        e.outcome = v.outcome;
        e.error = std::move(v.error);
        out.emplace_back(keys.items()[i].asString(), std::move(e));
    }
    return out;
}

Json
encodeQuarantineRecords(
    const std::vector<std::pair<std::string, core::QuarantineEntry>>
        &records)
{
    Json out = Json::array();
    for (const auto &[key, entry] : records) {
        Json r = Json::object();
        r["key"] = key;
        r["outcome"] = static_cast<int>(entry.outcome);
        if (!entry.error.empty())
            r["error"] = entry.error;
        out.push(std::move(r));
    }
    return out;
}

std::vector<std::pair<std::string, core::QuarantineEntry>>
decodeQuarantineRecords(const Json &j)
{
    std::vector<std::pair<std::string, core::QuarantineEntry>> out;
    if (!j.isArray())
        return out;
    for (const Json &r : j.items()) {
        core::QuarantineEntry e;
        e.outcome =
            static_cast<core::EvalOutcome>(r.num("outcome", 0));
        e.error = r.str("error");
        out.emplace_back(r.str("key"), std::move(e));
    }
    return out;
}

// ---------------------------------------------------------------------------
// IslandCoordinator

IslandCoordinator::IslandCoordinator(core::IslandConfig cfg,
                                     std::string ledgerPath)
    : cfg_(cfg), path_(std::move(ledgerPath)), ledger_(cfg)
{
    ledger_.attachQuarantineFilter([this](const std::string &key) {
        return store_.isQuarantined(key);
    });
}

IslandCoordinator::Recovery
IslandCoordinator::recover()
{
    if (path_.empty() || !std::filesystem::exists(path_))
        return Recovery::Fresh;
    std::string text = slurpFile(path_);
    if (!ledger_.decode(text))
        return Recovery::Corrupt;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[epoch, keys] : ledger_.broadcasts())
        persistedEpochs_.insert(epoch);
    return Recovery::Restored;
}

void
IslandCoordinator::persist()
{
    if (path_.empty())
        return;
    // Encode before taking mu_ (the ledger has its own lock); the
    // retired_ check and the write share one critical section so a
    // concurrent retire() can never lose to an in-flight persist.
    std::string text = ledger_.encode();
    std::lock_guard<std::mutex> lock(mu_);
    if (retired_)
        return;
    writeFileAtomic(path_, text);
}

void
IslandCoordinator::removeLedgerFile()
{
    if (!path_.empty())
        std::remove(path_.c_str());
}

void
IslandCoordinator::retire()
{
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = true;
    removeLedgerFile();
}

Json
IslandCoordinator::handleMigrate(const Json &msg)
{
    int island = static_cast<int>(msg.num("island", -1));
    if (island < 0 || island >= cfg_.islands)
        return makeError(errc::kBadRequest,
                         "migrate frame names island " +
                             std::to_string(island) + " of a " +
                             std::to_string(cfg_.islands) +
                             "-island job");
    if (const Json *replay = msg.find("replay")) {
        // A resumed shard audits its imported-migrant history against
        // the sealed broadcasts; disagreements count elitesLost.
        ledger_.verifyReplay(island, migrantRecordsFromJson(*replay));
        Json ok = Json::object();
        ok["type"] = "ok";
        return ok;
    }
    int epoch = static_cast<int>(msg.num("epoch", 0));
    ledger_.submit(island, epoch,
                   core::decodeVariants(msg.str("elites")));
    core::MigrationLedger::Exchange ex = ledger_.poll(island, epoch);
    if (!ex.ready) {
        // Barrier still open: the worker re-polls by re-sending the
        // same frame (submit is idempotent per island+epoch). Unsealed
        // submissions need no durability — every live shard re-offers
        // its elites on each poll after a coordinator restart.
        Json wait = Json::object();
        wait["type"] = "ok";
        wait["wait"] = true;
        return wait;
    }
    bool persistNow = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        persistNow = persistedEpochs_.insert(epoch).second;
    }
    if (persistNow)
        persist();  // the seal (and its migrant set) must be durable
                    // before any island can inject from it
    Json reply = Json::object();
    reply["type"] = "migrants";
    reply["stop"] = ex.stop;
    reply["migrants"] = core::encodeVariants(ex.migrants);
    return reply;
}

Json
IslandCoordinator::handleCacheSync(const Json &msg)
{
    std::vector<std::pair<std::string, core::QuarantineEntry>>
        condemned;
    if (const Json *c = msg.find("condemn"))
        condemned = decodeQuarantineRecords(*c);
    if (const Json *pk = msg.find("publish_keys")) {
        store_.publish(decodeCacheEntries(*pk, msg.str("publish")),
                       condemned);
    } else if (!condemned.empty()) {
        store_.publish({}, condemned);
    }
    Json reply = Json::object();
    reply["type"] = "cache";
    if (const Json *lk = msg.find("lookup")) {
        std::vector<std::string> keys;
        for (const Json &k : lk->items())
            keys.push_back(k.asString());
        std::unordered_map<std::string, core::FitnessCache::Entry>
            hits;
        std::unordered_map<std::string, core::QuarantineEntry> quar;
        store_.lookup(keys, &hits, &quar);
        // Serialize in request-key order so replies are deterministic.
        std::vector<std::pair<std::string, core::FitnessCache::Entry>>
            hitList;
        std::vector<std::pair<std::string, core::QuarantineEntry>>
            quarList;
        for (const std::string &key : keys) {
            if (auto q = quar.find(key); q != quar.end())
                quarList.emplace_back(key, q->second);
            else if (auto h = hits.find(key); h != hits.end())
                hitList.emplace_back(key, h->second);
        }
        Json hitKeys;
        reply["hits"] = encodeCacheEntries(hitList, &hitKeys);
        reply["hit_keys"] = std::move(hitKeys);
        reply["quarantined"] = encodeQuarantineRecords(quarList);
    }
    return reply;
}

void
IslandCoordinator::shardDone(int island, const Json &digest,
                             Json result, const std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error.empty() && failure_.empty())
            failure_ = "island " + std::to_string(island) +
                       " failed: " + error;
        digests_[island] = digest;
        results_[island] = std::move(result);
    }
    int generations =
        static_cast<int>(digest.num("generations", 0));
    ledger_.markDone(island,
                     epochOf(generations, cfg_.migrationInterval),
                     digest.flag("found"));
    persist();
}

void
IslandCoordinator::shardReaped(int island)
{
    ledger_.markDone(island, 0, false);
    persist();
}

bool
IslandCoordinator::allDone()
{
    return ledger_.allDone();
}

Json
IslandCoordinator::assemble(uint64_t seed, std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!failure_.empty()) {
        if (error)
            *error = failure_;
        return Json();
    }
    std::vector<core::IslandStats> islands;
    for (int i = 0; i < cfg_.islands; ++i) {
        auto it = digests_.find(i);
        if (it != digests_.end()) {
            islands.push_back(islandStatsFromDigest(it->second));
        } else {
            core::IslandStats st;  // reaped before it ever ran
            st.island = i;
            st.stopped = true;
            islands.push_back(st);
        }
    }
    auto [wIsland, wEpoch] = ledger_.winner();
    bool found = wIsland != -1;
    // The job's result payload is the winning island's; without a
    // winner, the best best-seen fitness (lowest index on ties) —
    // exactly core::runIslands()'s choice.
    int resultIsland = wIsland;
    if (!found) {
        resultIsland = 0;
        for (int i = 1; i < cfg_.islands; ++i)
            if (islands[static_cast<size_t>(i)].bestFitness >
                islands[static_cast<size_t>(resultIsland)].bestFitness)
                resultIsland = i;
    }
    core::IslandFingerprintInput in;
    in.seed = seed;
    in.config = cfg_;
    in.winnerIsland = found ? wIsland : -1;
    in.winnerEpoch = wEpoch;
    in.islands = islands;
    in.broadcasts = ledger_.broadcasts();
    uint64_t fp = core::islandFingerprint(in);
    Json result;
    if (auto it = results_.find(resultIsland); it != results_.end())
        result = it->second;
    else
        result = Json::object();
    result["islands"] = islandBlockJson(
        seed, cfg_, found, found ? wIsland : -1, wEpoch, islands,
        in.broadcasts, ledger_.stats(), fp);
    return result;
}

// ---------------------------------------------------------------------------
// FleetRegistry

std::string
FleetRegistry::workerConnected(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    // The key embeds a connection serial so a reconnecting worker
    // never aliases its previous (possibly still-leased) incarnation.
    std::string key = (name.empty() ? "worker" : name) + "/" +
                      std::to_string(nextKey_++);
    workers_.insert(key);
    return key;
}

void
FleetRegistry::workerDisconnected(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    workers_.erase(key);
}

int
FleetRegistry::workerCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(workers_.size());
}

// ---------------------------------------------------------------------------
// Worker

Worker::Worker(WorkerConfig cfg) : cfg_(std::move(cfg)) {}

std::string
Worker::snapshotPath(long id, int island) const
{
    std::string base = cfg_.workDir + "/job-" + std::to_string(id);
    if (island >= 0)
        base += ".i" + std::to_string(island);
    return base + ".snap";
}

WorkerStats
Worker::stats()
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

bool
Worker::claim(Conn &conn, Assignment *out)
{
    Json req = Json::object();
    req["type"] = "claim";
    req["wait_ms"] =
        static_cast<long long>(cfg_.claimWaitSeconds * 1000.0);
    conn.writeFrame(req.dump());
    std::string payload;
    if (!conn.readFrame(&payload))
        throw ConnectionClosed("coordinator closed during claim");
    Json reply = Json::parse(payload);
    std::string type = reply.str("type");
    if (type == "no_job")
        return false;
    if (type != "job")
        throw FrameError("unexpected claim reply '" + type + "'");
    out->id = reply.num("id", -1);
    out->leaseId = static_cast<uint64_t>(reply.num("lease_id", 0));
    out->leaseSeconds = reply.real("lease_seconds", 3.0);
    const Json *spec = reply.find("spec");
    if (out->id < 0 || out->leaseId == 0 || !spec)
        throw FrameError("malformed job frame from coordinator");
    out->specJson = spec->dump();
    out->snapshot = reply.str("snapshot");
    out->island = static_cast<int>(reply.num("island", -1));
    return true;
}

void
Worker::execute(Conn &conn, const Assignment &a,
                const std::function<bool()> &shouldExit)
{
    JobSpec spec = jobSpecFromJson(Json::parse(a.specJson));
    std::string snapPath = snapshotPath(a.id);
    if (!a.snapshot.empty())
        writeFileAtomic(snapPath, a.snapshot);  // resume hand-off
    else
        std::remove(snapPath.c_str());  // never resume a stale attempt

    // The engine thread (per-generation progress) and the heartbeat
    // thread share the coordinator connection; each request/response
    // exchange is atomic under this mutex, so replies cannot cross.
    std::mutex connMu;
    std::atomic<bool> abandoned{false};  //!< lease lost or link dead
    std::atomic<bool> cancel{false};     //!< coordinator-relayed cancel
    std::atomic<bool> jobDone{false};    //!< stops the heartbeat thread

    auto exchange = [&](const Json &req, Json *reply) -> bool {
        std::lock_guard<std::mutex> lock(connMu);
        if (abandoned.load(std::memory_order_relaxed))
            return false;
        try {
            conn.writeFrame(req.dump());
            std::string payload;
            if (!conn.readFrame(&payload))
                throw ConnectionClosed(
                    "coordinator closed mid-exchange");
            *reply = Json::parse(payload);
            return true;
        } catch (const std::exception &) {
            // Any transport damage mid-job: abandon the attempt and
            // let the lease decide the job's fate. Never guess.
            abandoned.store(true, std::memory_order_relaxed);
            return false;
        }
    };

    auto handleLeaseReply = [&](const Json &reply) {
        if (reply.str("type") == "error") {
            if (reply.str("code") == errc::kLeaseLost) {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.leasesLost;
            }
            abandoned.store(true, std::memory_order_relaxed);
            return;
        }
        if (reply.flag("cancel"))
            cancel.store(true, std::memory_order_relaxed);
    };

    // Heartbeats keep the lease alive across generations that outlast
    // it (a renewal every leaseSeconds/3 tolerates two lost beats).
    std::mutex hbMu;
    std::condition_variable hbCv;
    std::thread heartbeat([&] {
        auto period = std::chrono::duration<double>(
            std::max(0.05, a.leaseSeconds / 3.0));
        std::unique_lock<std::mutex> lock(hbMu);
        while (!hbCv.wait_for(lock, period, [&] {
            return jobDone.load(std::memory_order_relaxed);
        })) {
            lock.unlock();
            Json req = Json::object();
            req["type"] = "heartbeat";
            req["id"] = a.id;
            req["lease_id"] = static_cast<long long>(a.leaseId);
            Json reply;
            if (exchange(req, &reply))
                handleLeaseReply(reply);
            lock.lock();
        }
    });

    auto onGeneration = [&](const core::GenerationStats &gs) {
        Json req = Json::object();
        req["type"] = "progress";
        req["id"] = a.id;
        req["lease_id"] = static_cast<long long>(a.leaseId);
        req["generation"] = gs.generation;
        req["best_fitness"] = gs.bestFitness;
        req["fitness_evals"] = gs.fitnessEvals;
        req["invalid_mutants"] = gs.invalidMutants;
        req["total_mutants"] = gs.totalMutants;
        // The checkpoint is durable before onGeneration fires; ship it
        // so the coordinator can resume the job anywhere on failover.
        req["snapshot"] = slurpFile(snapPath);
        Json reply;
        if (exchange(req, &reply))
            handleLeaseReply(reply);
    };

    auto shouldStop = [&] {
        return abandoned.load(std::memory_order_relaxed) ||
               cancel.load(std::memory_order_relaxed) ||
               (shouldExit && shouldExit()) || stopRequested();
    };

    SessionOutcome out = runRepairJob(spec, snapPath, onGeneration,
                                      shouldStop, cfg_.name);

    {
        std::lock_guard<std::mutex> lock(hbMu);
        jobDone.store(true, std::memory_order_relaxed);
    }
    hbCv.notify_all();
    heartbeat.join();

    std::remove(snapPath.c_str());

    if (abandoned.load(std::memory_order_relaxed)) {
        // Lease lost or link dead: this attempt must not commit. The
        // coordinator already re-queued (or will, at lease expiry).
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    if (out.state == JobState::Canceled &&
        !cancel.load(std::memory_order_relaxed)) {
        // Stopped because the *worker* is winding down, not because
        // the client canceled: stay silent, keep the lease unrenewed,
        // and let the coordinator re-queue from its snapshot copy.
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }

    Json req = Json::object();
    req["type"] = "done";
    req["id"] = a.id;
    req["lease_id"] = static_cast<long long>(a.leaseId);
    req["state"] = jobStateName(out.state);
    req["result"] = std::move(out.result);
    if (!out.error.empty())
        req["error"] = out.error;
    Json reply;
    if (!exchange(req, &reply))
        return;  // commit lost in transit; lease arbitration decides
    if (reply.str("type") == "error") {
        handleLeaseReply(reply);
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.jobsCompleted;
}

void
Worker::executeShard(Conn &conn, const Assignment &a,
                     const std::function<bool()> &shouldExit)
{
    JobSpec spec = jobSpecFromJson(Json::parse(a.specJson));
    std::string snapPath = snapshotPath(a.id, a.island);
    if (!a.snapshot.empty())
        writeFileAtomic(snapPath, a.snapshot);  // resume hand-off
    else
        std::remove(snapPath.c_str());  // never resume a stale attempt

    std::mutex connMu;
    std::atomic<bool> abandoned{false};  //!< lease lost or link dead
    std::atomic<bool> cancel{false};     //!< coordinator-relayed cancel
    std::atomic<bool> migStop{false};    //!< barrier handed out a stop
    std::atomic<bool> jobDone{false};    //!< stops the heartbeat thread

    auto exchange = [&](const Json &req, Json *reply) -> bool {
        std::lock_guard<std::mutex> lock(connMu);
        if (abandoned.load(std::memory_order_relaxed))
            return false;
        try {
            conn.writeFrame(req.dump());
            std::string payload;
            if (!conn.readFrame(&payload))
                throw ConnectionClosed(
                    "coordinator closed mid-exchange");
            *reply = Json::parse(payload);
            return true;
        } catch (const std::exception &) {
            abandoned.store(true, std::memory_order_relaxed);
            return false;
        }
    };

    auto handleLeaseReply = [&](const Json &reply) {
        if (reply.str("type") == "error") {
            if (reply.str("code") == errc::kLeaseLost) {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.leasesLost;
            }
            abandoned.store(true, std::memory_order_relaxed);
            return;
        }
        if (reply.flag("cancel"))
            cancel.store(true, std::memory_order_relaxed);
    };

    std::mutex hbMu;
    std::condition_variable hbCv;
    std::thread heartbeat([&] {
        auto period = std::chrono::duration<double>(
            std::max(0.05, a.leaseSeconds / 3.0));
        std::unique_lock<std::mutex> lock(hbMu);
        while (!hbCv.wait_for(lock, period, [&] {
            return jobDone.load(std::memory_order_relaxed);
        })) {
            lock.unlock();
            Json req = Json::object();
            req["type"] = "heartbeat";
            req["id"] = a.id;
            req["lease_id"] = static_cast<long long>(a.leaseId);
            Json reply;
            if (exchange(req, &reply))
                handleLeaseReply(reply);
            lock.lock();
        }
    });

    auto windingDown = [&] {
        return (shouldExit && shouldExit()) || stopRequested();
    };
    auto shouldStop = [&] {
        return abandoned.load(std::memory_order_relaxed) ||
               cancel.load(std::memory_order_relaxed) || windingDown();
    };

    IslandShardHooks hooks;
    // The blocking half of the epoch barrier: offer elites, then
    // re-send the (idempotent) migrate frame until the coordinator
    // seals the epoch. Each poll also renews the lease.
    hooks.exchange = [&](int epoch, std::vector<core::Variant> elites,
                         bool *stop) -> std::vector<core::Variant> {
        Json req = Json::object();
        req["type"] = "migrate";
        req["id"] = a.id;
        req["lease_id"] = static_cast<long long>(a.leaseId);
        req["island"] = a.island;
        req["epoch"] = epoch;
        req["elites"] = core::encodeVariants(elites);
        for (;;) {
            if (shouldStop()) {
                *stop = true;  // wind-down/cancel ends the wait; the
                return {};     // commit rules below decide the fate
            }
            Json reply;
            if (!exchange(req, &reply)) {
                *stop = true;
                return {};
            }
            handleLeaseReply(reply);
            if (reply.str("type") == "migrants") {
                if (reply.flag("stop")) {
                    migStop.store(true, std::memory_order_relaxed);
                    *stop = true;
                    return {};
                }
                return core::decodeVariants(reply.str("migrants"));
            }
            // "ok" with wait (or a lease error already handled):
            // barrier still open — some island has not reached this
            // epoch yet. Back off briefly and re-poll.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
    };
    hooks.replay = [&](const std::vector<core::MigrantRecord> &led) {
        Json req = Json::object();
        req["type"] = "migrate";
        req["id"] = a.id;
        req["lease_id"] = static_cast<long long>(a.leaseId);
        req["island"] = a.island;
        req["replay"] = migrantRecordsToJson(led);
        Json reply;
        if (exchange(req, &reply))
            handleLeaseReply(reply);
    };
    hooks.lookup =
        [&](const std::vector<std::string> &keys,
            std::unordered_map<std::string,
                               core::FitnessCache::Entry> *hits,
            std::unordered_map<std::string, core::QuarantineEntry>
                *quar) {
            if (keys.empty())
                return;
            Json req = Json::object();
            req["type"] = "cache_sync";
            req["id"] = a.id;
            req["lease_id"] = static_cast<long long>(a.leaseId);
            req["island"] = a.island;
            Json lk = Json::array();
            for (const std::string &k : keys)
                lk.push(k);
            req["lookup"] = std::move(lk);
            Json reply;
            if (!exchange(req, &reply))
                return;  // no sharing this round; search unchanged
            handleLeaseReply(reply);
            if (reply.str("type") != "cache")
                return;
            const Json *hitKeys = reply.find("hit_keys");
            if (hitKeys && hits) {
                for (auto &[key, entry] : decodeCacheEntries(
                         *hitKeys, reply.str("hits")))
                    hits->emplace(key, std::move(entry));
            }
            if (const Json *q = reply.find("quarantined"); q && quar) {
                for (auto &[key, entry] : decodeQuarantineRecords(*q))
                    quar->emplace(key, std::move(entry));
            }
        };
    hooks.publish =
        [&](const std::vector<std::pair<std::string,
                                        core::FitnessCache::Entry>>
                &scored,
            const std::vector<
                std::pair<std::string, core::QuarantineEntry>>
                &condemned) {
            if (scored.empty() && condemned.empty())
                return;
            Json req = Json::object();
            req["type"] = "cache_sync";
            req["id"] = a.id;
            req["lease_id"] = static_cast<long long>(a.leaseId);
            req["island"] = a.island;
            if (!scored.empty()) {
                Json keys;
                req["publish"] = encodeCacheEntries(scored, &keys);
                req["publish_keys"] = std::move(keys);
            }
            if (!condemned.empty())
                req["condemn"] = encodeQuarantineRecords(condemned);
            Json reply;
            if (exchange(req, &reply))
                handleLeaseReply(reply);
        };

    auto onGeneration = [&](const core::GenerationStats &gs) {
        Json req = Json::object();
        req["type"] = "progress";
        req["id"] = a.id;
        req["lease_id"] = static_cast<long long>(a.leaseId);
        req["island"] = a.island;
        req["epoch"] = gs.epoch;
        req["generation"] = gs.generation;
        req["best_fitness"] = gs.bestFitness;
        req["fitness_evals"] = gs.fitnessEvals;
        req["invalid_mutants"] = gs.invalidMutants;
        req["total_mutants"] = gs.totalMutants;
        req["fleet_cache_hits"] = gs.fleetCacheHits;
        req["snapshot"] = slurpFile(snapPath);
        Json reply;
        if (exchange(req, &reply))
            handleLeaseReply(reply);
    };

    IslandShardOutcome out = runIslandShard(
        spec, a.island, snapPath, hooks, onGeneration, shouldStop,
        cfg_.name);

    {
        std::lock_guard<std::mutex> lock(hbMu);
        jobDone.store(true, std::memory_order_relaxed);
    }
    hbCv.notify_all();
    heartbeat.join();

    std::remove(snapPath.c_str());

    if (abandoned.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    if (out.stopped && !migStop.load(std::memory_order_relaxed) &&
        !cancel.load(std::memory_order_relaxed)) {
        // Stopped because the *worker* is winding down, not by the
        // barrier or a cancel: abandon silently so the coordinator
        // re-queues the shard from its snapshot copy.
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }

    Json req = Json::object();
    req["type"] = "done";
    req["id"] = a.id;
    req["lease_id"] = static_cast<long long>(a.leaseId);
    req["island"] = a.island;
    req["state"] = jobStateName(out.session.state);
    req["digest"] = std::move(out.digest);
    req["result"] = std::move(out.session.result);
    if (!out.session.error.empty())
        req["error"] = out.session.error;
    Json reply;
    if (!exchange(req, &reply))
        return;  // commit lost in transit; lease arbitration decides
    if (reply.str("type") == "error") {
        handleLeaseReply(reply);
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.jobsAbandoned;
        return;
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.jobsCompleted;
}

void
Worker::run(const std::function<bool()> &shouldExit)
{
    namespace fs = std::filesystem;
    if (cfg_.workDir.empty())
        throw std::runtime_error("worker needs a work dir");
    fs::create_directories(cfg_.workDir);
    Address addr = Address::parse(cfg_.coordinator);

    auto exiting = [&] {
        return stopRequested() || (shouldExit && shouldExit());
    };

    bool everConnected = false;
    while (!exiting()) {
        std::unique_ptr<Conn> conn;
        try {
            // Bounded attempts per round so a dead coordinator never
            // wedges the worker past its exit check.
            RetryPolicy round = cfg_.retry;
            round.maxAttempts = std::min(cfg_.retry.maxAttempts, 8);
            conn = dialRetry(addr, round);
        } catch (const TransportError &) {
            continue;  // next round (exit check above)
        }
        conn->setIoDeadline(cfg_.ioTimeoutSeconds +
                            cfg_.claimWaitSeconds);
        try {
            conn->writeFrame(makeWorkerHello(cfg_.name).dump());
            std::string payload;
            if (!conn->readFrame(&payload))
                throw ConnectionClosed("coordinator closed at hello");
            Json hello = Json::parse(payload);
            if (hello.str("type") != "hello")
                throw FrameError("coordinator refused worker hello: " +
                                 hello.str("message"));
            if (everConnected) {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.reconnects;
            }
            everConnected = true;

            while (!exiting()) {
                Assignment a;
                if (!claim(*conn, &a))
                    continue;  // long-poll came back empty
                if (a.island >= 0)
                    executeShard(*conn, a, shouldExit);
                else
                    execute(*conn, a, shouldExit);
            }
            return;
        } catch (const std::exception &) {
            // Transport failure anywhere in the loop: drop the link
            // and re-dial. In-flight work was already abandoned by
            // execute()'s own error handling.
        }
    }
}

} // namespace cirfix::service
