#include "service/client.h"

#include <atomic>
#include <random>
#include <sstream>

#include <unistd.h>

#include "service/framing.h"

namespace cirfix::service {

namespace {

[[noreturn]] void
throwErrorFrame(const Json &msg)
{
    throw ServiceError(msg.str("code", "internal"),
                       msg.str("message", "unspecified server error"));
}

} // namespace

Client::Client(const std::string &address, const ClientOptions &opts)
{
    Address addr = Address::parse(address);
    if (opts.connectAttempts > 1) {
        RetryPolicy policy;
        policy.maxAttempts = opts.connectAttempts;
        policy.connectTimeout = opts.connectTimeout;
        conn_ = dialRetry(addr, policy);
    } else {
        conn_ = dial(addr, opts.connectTimeout);
    }
    conn_->setIoDeadline(opts.ioTimeout);
    try {
        send(makeHello());
        if (!recv(&hello_))
            throw std::runtime_error(
                "server closed the connection during the handshake");
        if (hello_.str("type") == "error")
            throwErrorFrame(hello_);
        if (hello_.str("type") != "hello")
            throw std::runtime_error("unexpected handshake reply '" +
                                     hello_.str("type") + "'");
    } catch (...) {
        conn_.reset();
        throw;
    }
}

Client::~Client() = default;

void
Client::send(const Json &msg)
{
    conn_->writeFrame(msg.dump());
}

bool
Client::recv(Json *out)
{
    std::string payload;
    if (!conn_->readFrame(&payload))
        return false;
    *out = Json::parse(payload);
    return true;
}

Json
Client::request(const Json &msg)
{
    send(msg);
    Json reply;
    if (!recv(&reply))
        throw std::runtime_error(
            "server closed the connection mid-request");
    if (reply.str("type") == "error")
        throwErrorFrame(reply);
    return reply;
}

long
Client::submit(const JobSpec &spec, const std::string &requestId)
{
    Json msg = Json::object();
    msg["type"] = "submit";
    msg["job"] = toJson(spec);
    if (!requestId.empty())
        msg["request_id"] = requestId;
    Json reply = request(msg);
    return reply.num("id", -1);
}

Json
Client::status(long id)
{
    Json msg = Json::object();
    msg["type"] = "status";
    msg["id"] = id;
    Json reply = request(msg);
    if (const Json *job = reply.find("job")) {
        Json out = *job;
        // Daemon-wide lease totals ride the status reply; surface
        // them on the summary so `cirfix status` shows them.
        if (const Json *ls = reply.find("lease_stats"))
            out["lease_stats"] = *ls;
        return out;
    }
    return Json();
}

Json
Client::list()
{
    Json msg = Json::object();
    msg["type"] = "list";
    Json reply = request(msg);
    if (const Json *jobs = reply.find("jobs"))
        return *jobs;
    return Json::array();
}

void
Client::cancel(long id)
{
    Json msg = Json::object();
    msg["type"] = "cancel";
    msg["id"] = id;
    request(msg);
}

Json
Client::result(long id)
{
    Json msg = Json::object();
    msg["type"] = "result";
    msg["id"] = id;
    return request(msg);
}

void
Client::subscribe(long id)
{
    Json msg = Json::object();
    msg["type"] = "subscribe";
    msg["id"] = id;
    send(msg);
}

std::string
Client::newRequestId()
{
    // pid + random + counter: unique across processes and across
    // retries within one, without any coordination.
    static std::atomic<uint64_t> counter{0};
    static const uint64_t entropy = [] {
        std::random_device rd;
        return (static_cast<uint64_t>(rd()) << 32) ^ rd();
    }();
    std::ostringstream os;
    os << std::hex << static_cast<unsigned long>(::getpid()) << "-"
       << entropy << "-" << std::dec
       << counter.fetch_add(1, std::memory_order_relaxed);
    return os.str();
}

} // namespace cirfix::service
