#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/framing.h"

namespace cirfix::service {

namespace {

[[noreturn]] void
throwErrorFrame(const Json &msg)
{
    throw ServiceError(msg.str("code", "internal"),
                       msg.str("message", "unspecified server error"));
}

} // namespace

Client::Client(const std::string &socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path)
        throw std::runtime_error("socket path too long: " + socketPath);
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof addr.sun_path - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("cannot connect to " + socketPath +
                                 ": " + std::strerror(err));
    }
    try {
        send(makeHello());
        if (!recv(&hello_))
            throw std::runtime_error(
                "server closed the connection during the handshake");
        if (hello_.str("type") == "error")
            throwErrorFrame(hello_);
        if (hello_.str("type") != "hello")
            throw std::runtime_error("unexpected handshake reply '" +
                                     hello_.str("type") + "'");
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Client::send(const Json &msg)
{
    writeFrame(fd_, msg.dump());
}

bool
Client::recv(Json *out)
{
    std::string payload;
    if (!readFrame(fd_, payload))
        return false;
    *out = Json::parse(payload);
    return true;
}

Json
Client::request(const Json &msg)
{
    send(msg);
    Json reply;
    if (!recv(&reply))
        throw std::runtime_error(
            "server closed the connection mid-request");
    if (reply.str("type") == "error")
        throwErrorFrame(reply);
    return reply;
}

long
Client::submit(const JobSpec &spec)
{
    Json msg = Json::object();
    msg["type"] = "submit";
    msg["job"] = toJson(spec);
    Json reply = request(msg);
    return reply.num("id", -1);
}

Json
Client::status(long id)
{
    Json msg = Json::object();
    msg["type"] = "status";
    msg["id"] = id;
    Json reply = request(msg);
    if (const Json *job = reply.find("job"))
        return *job;
    return Json();
}

Json
Client::list()
{
    Json msg = Json::object();
    msg["type"] = "list";
    Json reply = request(msg);
    if (const Json *jobs = reply.find("jobs"))
        return *jobs;
    return Json::array();
}

void
Client::cancel(long id)
{
    Json msg = Json::object();
    msg["type"] = "cancel";
    msg["id"] = id;
    request(msg);
}

Json
Client::result(long id)
{
    Json msg = Json::object();
    msg["type"] = "result";
    msg["id"] = id;
    return request(msg);
}

void
Client::subscribe(long id)
{
    Json msg = Json::object();
    msg["type"] = "subscribe";
    msg["id"] = id;
    send(msg);
}

} // namespace cirfix::service
