#pragma once

/**
 * @file
 * The daemon's job table and scheduler queue.
 *
 * One JobQueue instance holds every job the daemon knows about —
 * waiting, running, and terminal — behind a single mutex. Scheduling
 * order is priority-then-FIFO: a higher priority value always runs
 * first, ties run in submission order. Workers block in pop() until a
 * job is ready (or the queue is closed at shutdown).
 *
 * Admission control happens inside submit(), under the same lock the
 * accept loop's dispatch uses, so the decision is deterministic and
 * immediate: a submission beyond the configured queue depth or beyond
 * the per-job budget caps is rejected with a structured reason
 * (Rejection{code, message}); it is never silently dropped and never
 * blocks the caller.
 *
 * Progress streaming: every state change and every finished generation
 * is appended to the job's event log and broadcast. Subscribers drain
 * the log with waitEvent(), which returns false once a terminal event
 * has been delivered (or the queue closed), so a subscriber sees the
 * complete, ordered event history regardless of when it attached.
 *
 * Fleet mode adds two orthogonal mechanisms:
 *
 *  - Idempotent submits: a submission may carry a request id; retrying
 *    the same id (a client re-sending after a transport error) returns
 *    the originally assigned job instead of enqueueing a duplicate.
 *
 *  - Leases: a remote worker claims a job with tryClaim(), which mints
 *    a monotonically increasing lease id and arms a deadline. The
 *    worker renews by heartbeat/progress; a lease that misses its
 *    deadline is swept by requeueExpired() and the job goes back to
 *    Queued for any other worker. Every mutation quoting a lease id is
 *    validated against the job's *current* lease, so a worker that was
 *    presumed dead and kept computing gets a stale-lease rejection
 *    instead of committing a duplicate result. That single check is
 *    the fleet's zero-duplication guarantee.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/engine.h"
#include "service/protocol.h"

namespace cirfix::service {

/** Admission-control policy knobs. */
struct AdmissionLimits
{
    /** Max jobs waiting to run (running/terminal jobs don't count).
     *  Submissions beyond this are rejected with queue_full. */
    int queueDepth = 64;
    /** Cap on popSize * maxGenerations (the job's evaluation budget);
     *  larger requests are rejected with budget_too_large. */
    long maxEvalBudget = 2'000'000;
    /** Cap on a job's wall-clock budget in seconds. */
    double maxBudgetSeconds = 3600.0;
};

/** Why a submission was refused (wire error code + human message). */
struct Rejection
{
    std::string code;
    std::string message;
};

/** One island shard of a K-island job (coordinator shard mode only;
 *  see DESIGN.md "Island-model evolution"). Each shard is leased to a
 *  worker independently: the job is Running while any shard is live
 *  and goes terminal only when the coordinator has assembled every
 *  shard's digest. */
struct JobShard
{
    uint64_t leaseId = 0;  //!< 0 = unleased (claimable unless done)
    std::chrono::steady_clock::time_point leaseDeadline{};
    std::string worker;
    int attempts = 0;
    bool done = false;  //!< digest committed; never re-leased

    // Progress mirror (per-island status lines).
    int generation = 0;
    int epoch = 0;
    double bestFitness = -1.0;
    long fitnessEvals = 0;
};

/** One job, owned by the queue. Every field is guarded by the queue's
 *  mutex except cancelRequested, which the engine's shouldStop hook
 *  polls lock-free from the worker thread. */
struct Job
{
    long id = 0;
    long seq = 0;  //!< global submission order (FIFO tiebreak)
    JobSpec spec;
    JobState state = JobState::Queued;
    std::atomic<bool> cancelRequested{false};
    std::string requestId;  //!< idempotency key ("" = none)

    // Lease bookkeeping (fleet mode; leaseId 0 = locally executed).
    uint64_t leaseId = 0;
    std::chrono::steady_clock::time_point leaseDeadline{};
    std::string worker;  //!< current/last executor name (provenance)
    int attempts = 0;    //!< assignment count (1 = never failed over)

    /** Island shards (coordinator shard mode, params.islands > 1);
     *  empty for plain jobs. Sharded jobs never go through pop() or a
     *  whole-job claim — only per-shard leases. */
    std::vector<JobShard> shards;

    // Progress mirror of the engine's GenerationStats, for status.
    int generation = 0;
    double bestFitness = -1.0;
    long fitnessEvals = 0;

    Json result;        //!< terminal payload (Done/Canceled)
    std::string error;  //!< diagnostic for Failed
    std::vector<Json> events;  //!< ordered progress stream
};

/** Lease-machinery totals since construction (fleet observability;
 *  fleet_bench gates staleRejections == duplicates prevented). */
struct LeaseStats
{
    uint64_t assignments = 0;     //!< tryClaim() grants
    uint64_t renewals = 0;        //!< heartbeat/progress renewals
    uint64_t expirations = 0;     //!< leases swept past their deadline
    uint64_t requeues = 0;        //!< jobs returned to Queued
    uint64_t staleRejections = 0; //!< mutations quoting a dead lease
};

class JobQueue
{
  public:
    explicit JobQueue(AdmissionLimits limits) : limits_(limits) {}

    /** Admission-checked submission: returns the new job id, or the
     *  structured rejection. Never blocks. A non-empty @p requestId
     *  makes the submit idempotent: retrying the same id returns the
     *  originally assigned job id without enqueueing again. */
    std::variant<long, Rejection> submit(JobSpec spec,
                                         const std::string &requestId =
                                             "");

    /** Fleet admission posture, consulted by submit(): @p noWorkers
     *  rejects every submit with no_workers; @p degraded halves the
     *  effective queue depth and codes overflow rejections degraded. */
    void setFleetStatus(bool noWorkers, bool degraded);

    /** Re-insert a job recovered from the state dir (restart path):
     *  keeps its id and submission order; terminal jobs are stored
     *  for status/result queries, live ones are re-queued. */
    void restore(std::shared_ptr<Job> job);

    /** Block until a queued job is ready and claim it as Running;
     *  nullptr once close() has been called and nothing is ready. */
    std::shared_ptr<Job> pop();

    /** Wake every pop()per and waitEvent()er; pop() returns nullptr
     *  from now on. */
    void close();

    /**
     * Cancel a job. Queued jobs go terminal immediately; running jobs
     * get their flag set and stop mid-generation (the worker publishes
     * the terminal state). @return false with @p why filled when the
     * job is unknown or already terminal.
     */
    bool cancel(long id, std::string *why);

    std::shared_ptr<Job> find(long id);
    std::vector<std::shared_ptr<Job>> list();
    size_t queuedCount();

    /** Append @p event to the job's log and wake subscribers. */
    void publish(Job &job, Json event);

    /** Move @p job to @p state and publish the state-change event.
     *  For Failed, @p error carries the diagnostic. */
    void setState(Job &job, JobState state,
                  const std::string &error = "");

    /** Update the progress mirror and publish a generation event. */
    void publishGeneration(Job &job,
                           const core::GenerationStats &gs);

    /**
     * Deliver the next event after index @p have to a subscriber.
     * Blocks until one exists. @return false when no further event
     * will come (terminal event already delivered, or queue closed).
     */
    bool waitEvent(long id, size_t have, Json *out);

    /** Store the terminal payload (call before setState()). */
    void setResult(Job &job, Json result);

    // ---- lease machinery (fleet mode) ----

    /** Shard mode (coordinator): submissions with params.islands > 1
     *  are split into one claimable shard per island instead of a
     *  whole-job assignment. Off by default — the classic daemon runs
     *  island jobs in-process. Set once, before any submission. */
    void setShardMode(bool on) { shardMode_ = on; }
    bool shardMode() const { return shardMode_; }

    /**
     * Non-blocking claim for a remote worker: picks the same
     * priority-then-FIFO job pop() would, marks it Running under a
     * fresh lease for @p worker, arms the deadline. nullptr when the
     * queue is empty or closed. @p leaseIdOut receives the lease.
     *
     * @p islandOut selects what the caller can execute: when null
     * (legacy callers) only whole jobs are handed out and sharded jobs
     * are skipped; when non-null, an island shard may be granted —
     * *islandOut receives its index (or -1 for a whole job). Lease ids
     * are minted from one counter, so a shard lease never collides
     * with a job lease.
     */
    std::shared_ptr<Job> tryClaim(const std::string &worker,
                                  double leaseSeconds,
                                  uint64_t *leaseIdOut,
                                  int *islandOut = nullptr);

    /** Renew a lease (heartbeat or progress frame) — a whole-job lease
     *  or an island-shard lease, found by its globally unique id.
     *  @return false when the lease is stale — the job was re-assigned
     *  or went terminal; the worker must abandon it. @p cancelOut
     *  (optional) reports a pending cancel request the worker should
     *  honor. */
    bool renewLease(long id, uint64_t leaseId, double leaseSeconds,
                    bool *cancelOut);

    /** Validate a lease for a terminal commit (done frame). On success
     *  the lease is cleared and the job returned still in Running state
     *  (caller publishes the terminal transition); nullptr on a stale
     *  lease (the attempt must be discarded — duplication barrier). */
    std::shared_ptr<Job> completeLeased(long id, uint64_t leaseId);

    /** Shard analogue of completeLeased(): validates the shard lease,
     *  marks the shard done (the job stays Running — the coordinator
     *  assembles the terminal result once every shard is done) and
     *  fills @p islandOut. nullptr on a stale lease. */
    std::shared_ptr<Job> completeShardLeased(long id, uint64_t leaseId,
                                             int *islandOut);

    /** Coordinator sweep for a cancel-requested sharded job: mark every
     *  unleased, undone shard done (it will never be claimed again) and
     *  return their indices so the coordinator can settle its ledger.
     *  Leased shards are left to wind down via the cancel flag. */
    std::vector<int> reapCanceledShards(Job &job);

    /** Sweep: requeue every leased Running job whose deadline passed.
     *  Jobs with a pending cancel go terminal Canceled instead.
     *  @return every swept id — re-queued AND cancel-terminated ones
     *  (the server persists the terminal results among them). */
    std::vector<long> requeueExpired();

    /** A worker's connection died: immediately requeue every job it
     *  holds a live lease on (faster than waiting for expiry). */
    std::vector<long> requeueOwnedBy(const std::string &worker);

    /** Soonest lease deadline among live leases; time_point{} when no
     *  lease is armed (lets the sweep poll adaptively). */
    std::chrono::steady_clock::time_point nextLeaseDeadline();

    LeaseStats leaseStats();

    /** Snapshot a job's terminal payload. @return false when the job
     *  is unknown; otherwise fills state and, when terminal, result
     *  and error. */
    bool resultFor(long id, JobState *state, Json *result,
                   std::string *error);

    /** Locked wire summary; Null JSON when the job is unknown. */
    Json summaryFor(long id);
    /** Locked wire summaries of every job, in id order. */
    std::vector<Json> summaries();

    const AdmissionLimits &limits() const { return limits_; }

  private:
    /** Highest-priority, earliest-seq queued job (lock held). */
    std::shared_ptr<Job> nextReadyLocked();
    /** Requeue (or cancel-terminate) a leased job; lock held. */
    void requeueLocked(Job &job);
    void pushStateEventLocked(Job &job);

    AdmissionLimits limits_;
    std::mutex mu_;
    std::condition_variable readyCv_;   //!< workers wait here
    std::condition_variable eventsCv_;  //!< subscribers wait here
    std::map<long, std::shared_ptr<Job>> jobs_;
    std::unordered_map<std::string, long> requestIds_;
    long nextId_ = 1;
    long nextSeq_ = 0;
    uint64_t nextLease_ = 1;
    bool shardMode_ = false;
    bool closed_ = false;
    bool noWorkers_ = false;
    bool degraded_ = false;
    LeaseStats leaseStats_;
};

/** Build the wire summary object for one job (status/list replies).
 *  The caller must hold the queue lock (or own the job exclusively);
 *  prefer JobQueue::summaryFor() / summaries(). */
Json jobSummary(const Job &job);

} // namespace cirfix::service
