#pragma once

/**
 * @file
 * The repair daemon: a Unix-domain-socket server multiplexing many
 * repair jobs over one process ("cirfix serve").
 *
 * Thread model:
 *  - an accept thread poll()s the listening socket plus an internal
 *    stop pipe, so shutdown never races an accept();
 *  - one thread per client connection runs the handshake and request
 *    dispatch (a subscribe parks the connection on the job's event
 *    stream until the terminal event);
 *  - N worker threads pop jobs off the JobQueue and run repair
 *    sessions; admission control has already bounded what they see.
 *
 * Durability: a job is persisted to the state dir at admission
 * (<dir>/job-<id>.json, atomic tmp+rename), checkpointed by the engine
 * every generation (<dir>/job-<id>.snap), and sealed with a result
 * file at terminal state (<dir>/job-<id>.result.json). start() replays
 * the directory: terminal jobs come back queryable, live jobs re-queue
 * in their original submission order and resume from their snapshot —
 * so a SIGKILLed daemon restarts with at most one generation of work
 * lost per job, and the resumed search is bit-identical to one that
 * never died.
 */

#include <string>
#include <thread>
#include <vector>

#include "service/jobqueue.h"

namespace cirfix::service {

struct ServerConfig
{
    std::string socketPath;
    std::string stateDir;
    /** Concurrent repair sessions. 0 is admit-only (jobs queue but
     *  never run — used by the admission tests). */
    int workers = 1;
    AdmissionLimits limits;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket, recover the state dir, launch the accept and
     *  worker threads. @throws std::runtime_error on bind failures. */
    void start();

    /** Graceful shutdown: stop accepting, unblock every connection,
     *  ask running engines to stop at the next poll, join everything.
     *  Running jobs stay re-queueable (they are not canceled) and
     *  resume on the next start(). Idempotent. */
    void stop();

    /** Block until requestStop() is called (signal handlers use it). */
    void wait();

    /** Async-signal-safe stop trigger (writes one byte to the stop
     *  pipe); the accept thread then drives the actual stop(). */
    void requestStop();

    JobQueue &queue() { return queue_; }
    const ServerConfig &config() const { return cfg_; }

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    Json dispatch(const Json &msg, int fd, bool &keep_open);
    void runJob(const std::shared_ptr<Job> &job);

    // ---- persistence ----
    std::string jobFile(long id) const;
    std::string snapshotFile(long id) const;
    std::string resultFile(long id) const;
    void persistJob(const Job &job);
    void persistResult(const Job &job);
    void recoverStateDir();

    ServerConfig cfg_;
    JobQueue queue_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;

    std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
};

} // namespace cirfix::service
