#pragma once

/**
 * @file
 * The repair daemon: a stream-socket server multiplexing many repair
 * jobs over one process ("cirfix serve"), listening on a Unix-domain
 * or TCP address (transport.h). With fleet mode enabled it doubles as
 * the coordinator ("cirfix coordinator"): remote workers connect over
 * the same listener, claim jobs under leases, and stream progress and
 * engine snapshots back (fleet.h).
 *
 * Thread model:
 *  - an accept thread poll()s the (non-blocking) listening socket plus
 *    an internal stop pipe, so shutdown never races an accept(); its
 *    poll timeout doubles as the lease-expiry sweep tick;
 *  - one thread per connection runs the handshake and request dispatch
 *    (a subscribe parks the connection on the job's event stream until
 *    the terminal event; a worker connection parks in its
 *    claim/progress/heartbeat/done loop);
 *  - N worker threads pop jobs off the JobQueue and run repair
 *    sessions locally; admission control has already bounded what they
 *    see. A coordinator runs with N = 0 and only remote execution.
 *
 * Durability: a job is persisted to the state dir at admission
 * (<dir>/job-<id>.json, atomic tmp+rename), checkpointed every
 * generation (<dir>/job-<id>.snap — written by the engine for local
 * jobs, received in progress frames for remote ones), and sealed with
 * a result file at terminal state (<dir>/job-<id>.result.json).
 * start() replays the directory: terminal jobs come back queryable,
 * live jobs re-queue in their original submission order and resume
 * from their snapshot — so a SIGKILLed daemon restarts with at most
 * one generation of work lost per job, and the resumed search is
 * bit-identical to one that never died. The same snapshot hand-off is
 * what makes worker failover lossless: whichever worker claims a
 * re-queued job resumes exactly where the dead one checkpointed.
 */

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/fleet.h"
#include "service/jobqueue.h"
#include "service/transport.h"

namespace cirfix::service {

struct ServerConfig
{
    /** Legacy Unix socket path (used when listenAddress is empty). */
    std::string socketPath;
    /** Listen address ("unix:PATH" / "tcp:host:port"); overrides
     *  socketPath. TCP port 0 binds an ephemeral port — read it back
     *  with Server::boundAddress(). */
    std::string listenAddress;
    std::string stateDir;
    /** Concurrent local repair sessions. 0 is admit-only: jobs queue
     *  but only run if remote workers claim them (coordinator mode)
     *  — also used by the admission tests. */
    int workers = 1;
    AdmissionLimits limits;
    FleetConfig fleet;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket, recover the state dir, launch the accept and
     *  worker threads. @throws std::runtime_error on bind failures. */
    void start();

    /** Graceful shutdown: stop accepting, unblock every connection,
     *  ask running engines to stop at the next poll, join everything.
     *  Running jobs stay re-queueable (they are not canceled) and
     *  resume on the next start(). Idempotent. */
    void stop();

    /** Block until requestStop() is called (signal handlers use it). */
    void wait();

    /** Async-signal-safe stop trigger (writes one byte to the stop
     *  pipe); the accept thread then drives the actual stop(). */
    void requestStop();

    JobQueue &queue() { return queue_; }
    const ServerConfig &config() const { return cfg_; }
    /** Actual listen address after start() (ephemeral port resolved). */
    std::string boundAddress() const;
    /** Live remote-worker connection count. */
    int workerCount() { return fleet_.workerCount(); }

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(const std::shared_ptr<Conn> &conn);
    Json dispatch(const Json &msg, Conn &conn, bool &keep_open);
    void runJob(const std::shared_ptr<Job> &job);

    // ---- coordinator side of the fleet protocol ----
    void handleWorkerConnection(Conn &conn, const std::string &key);
    Json dispatchWorker(const Json &msg, const std::string &key);
    /** Recompute the admission posture from live worker counts. */
    void updateFleetStatus();
    /** Persist terminal states minted by the lease sweep. */
    void sweepLeases();

    // ---- island-job orchestration (shard mode) ----
    std::string ledgerFile(long id) const;
    std::string shardSnapshotFile(long id, int island) const;
    /** Find-or-create (and crash-recover) the coordinator of a
     *  sharded job; nullptr for plain jobs. */
    std::shared_ptr<IslandCoordinator>
    islandCoordinatorFor(const std::shared_ptr<Job> &job);
    /** Assemble + commit a sharded job's terminal state (idempotent —
     *  the done handler and the sweep may race here). */
    void finishIslandJob(const std::shared_ptr<Job> &job,
                         const std::shared_ptr<IslandCoordinator>
                             &coord);
    /** Settle canceled island jobs whose unleased shards will never
     *  run; assemble any job that became allDone. */
    void sweepIslandJobs();

    // ---- persistence ----
    std::string jobFile(long id) const;
    std::string snapshotFile(long id) const;
    std::string resultFile(long id) const;
    void persistJob(const Job &job);
    void persistResult(const Job &job);
    void recoverStateDir();

    ServerConfig cfg_;
    JobQueue queue_;
    FleetRegistry fleet_;
    std::mutex islandMu_;
    /** Live coordinators of sharded jobs, keyed by job id. */
    std::map<long, std::shared_ptr<IslandCoordinator>> islandJobs_;
    Listener listener_;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
    /** Slot-per-connection; a finished connection clears its slot
     *  under connMu_ *before* the Conn is destroyed, so stop() can
     *  never shutdown() a recycled fd number. */
    std::vector<std::shared_ptr<Conn>> conns_;

    std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
};

} // namespace cirfix::service
