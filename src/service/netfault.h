#pragma once

/**
 * @file
 * Deterministic network fault injection for the fleet transport,
 * mirroring sim::FaultPlan: instead of hoping a flaky network shows
 * up in CI, the chaos tests *compile the faults in* and prove the
 * coordinator/worker protocol never loses or duplicates a job under
 * them.
 *
 * The injector is process-global and consulted by transport::Conn on
 * every framed read/write and by dial() on every connect attempt. All
 * counters are 1-based; 0 disables a hook. Two firing modes:
 *
 *  - one-shot (every = false): the hook fires exactly at the Nth
 *    operation and never again — for surgical tests ("drop the 3rd
 *    frame the worker writes");
 *  - periodic (every = true): the hook fires at every Nth operation
 *    (modulo) — for sustained chaos (fleet_bench runs whole repair
 *    fleets with every-7th-frame drops).
 *
 * Disarmed (the default and production state) the hooks are a single
 * relaxed atomic load — the transport pays nothing for the harness.
 */

#include <atomic>
#include <cstdint>
#include <mutex>

namespace cirfix::service {

/** What a transport hook should do at this operation. */
enum class NetFaultAction {
    None,     //!< proceed normally
    Stall,    //!< sleep stallSeconds first, then proceed
    Partial,  //!< (writes) put a truncated frame on the wire, then drop
    Drop,     //!< fail the operation as a peer disconnect
};

/** Injectable network-fault schedule (all counters 1-based; 0 = off). */
struct NetFaultPlan
{
    /** Fail the Nth dial() with an injected connection refusal —
     *  a partition between this process and the listener. */
    uint64_t refuseConnectAt = 0;
    /** Drop the connection instead of writing the Nth frame. */
    uint64_t dropWriteAt = 0;
    /** Write only half of the Nth frame, then drop the connection
     *  (the reader sees a truncated frame, not a clean EOF). */
    uint64_t partialWriteAt = 0;
    /** Sleep stallSeconds before writing the Nth frame. */
    uint64_t stallWriteAt = 0;
    /** Fail the Nth frame read as a peer disconnect. */
    uint64_t dropReadAt = 0;
    /** Sleep stallSeconds before reading the Nth frame. */
    uint64_t stallReadAt = 0;
    /** Stall duration for the stall hooks. */
    double stallSeconds = 0.02;
    /** false: each hook fires once, at its Nth operation.
     *  true: each hook fires at every multiple of N. */
    bool every = false;

    bool
    any() const
    {
        return refuseConnectAt || dropWriteAt || partialWriteAt ||
               stallWriteAt || dropReadAt || stallReadAt;
    }
};

/** Hook-hit totals since the last arm(). */
struct NetFaultCounters
{
    uint64_t connectsRefused = 0;
    uint64_t writesDropped = 0;
    uint64_t writesTruncated = 0;
    uint64_t writeStalls = 0;
    uint64_t readsDropped = 0;
    uint64_t readStalls = 0;

    uint64_t
    total() const
    {
        return connectsRefused + writesDropped + writesTruncated +
               writeStalls + readsDropped + readStalls;
    }
};

/**
 * Process-global injector. Tests arm() a plan, run the scenario, and
 * disarm(); the transport consults the hooks on every operation. All
 * methods are thread-safe — operation counters are shared across
 * every connection in the process, which is exactly what sustained
 * chaos wants (faults land on whichever peer happens to do the Nth
 * operation).
 */
class NetFaultInjector
{
  public:
    static NetFaultInjector &instance();

    /** Install @p plan and reset all operation and hit counters. */
    void arm(const NetFaultPlan &plan);
    /** Remove the plan; hooks return None/false until the next arm. */
    void disarm();
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /** @return true when this dial attempt should fail (partition). */
    bool onConnect();
    /** Consult the write-frame schedule (counts one frame write). */
    NetFaultAction onWriteFrame();
    /** Consult the read-frame schedule (counts one frame read). */
    NetFaultAction onReadFrame();

    double stallSeconds() const;
    NetFaultCounters counters() const;

  private:
    NetFaultInjector() = default;

    /** Does a 1-based schedule point @p at fire at operation @p op? */
    bool fires(uint64_t at, uint64_t op) const;

    std::atomic<bool> armed_{false};
    mutable std::mutex mu_;
    NetFaultPlan plan_;
    uint64_t connects_ = 0;
    uint64_t writes_ = 0;
    uint64_t reads_ = 0;
    NetFaultCounters hits_;
};

} // namespace cirfix::service
