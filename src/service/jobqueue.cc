#include "service/jobqueue.h"

#include <algorithm>

namespace cirfix::service {

std::variant<long, Rejection>
JobQueue::submit(JobSpec spec, const std::string &requestId)
{
    long evals = static_cast<long>(spec.params.popSize) *
                 static_cast<long>(std::max(1, spec.params.maxGenerations));
    if (evals > limits_.maxEvalBudget)
        return Rejection{
            errc::kBudgetTooLarge,
            "requested evaluation budget (pop " +
                std::to_string(spec.params.popSize) + " x gens " +
                std::to_string(spec.params.maxGenerations) + " = " +
                std::to_string(evals) + ") exceeds the per-job cap of " +
                std::to_string(limits_.maxEvalBudget)};
    if (spec.params.maxSeconds > limits_.maxBudgetSeconds)
        return Rejection{
            errc::kBudgetTooLarge,
            "requested wall-clock budget of " +
                std::to_string(spec.params.maxSeconds) +
                "s exceeds the per-job cap of " +
                std::to_string(limits_.maxBudgetSeconds) + "s"};

    std::lock_guard<std::mutex> lock(mu_);

    // Idempotency wins over every other admission check: a retried
    // submit refers to a job that was *already* admitted, so it must
    // succeed even if the queue filled up in between.
    if (!requestId.empty()) {
        auto it = requestIds_.find(requestId);
        if (it != requestIds_.end())
            return it->second;
    }

    if (noWorkers_)
        return Rejection{
            errc::kNoWorkers,
            "fleet has no live workers; submit again once one "
            "connects"};

    int depth = limits_.queueDepth;
    const char *depthCode = errc::kQueueFull;
    if (degraded_) {
        // Shed load while short-handed: accept half the normal depth
        // so the backlog stays drainable by the surviving workers.
        depth = std::max(1, depth / 2);
        depthCode = errc::kDegraded;
    }
    long queued = 0;
    for (auto &[id, job] : jobs_)
        if (job->state == JobState::Queued)
            ++queued;
    if (queued >= depth)
        return Rejection{
            depthCode,
            std::string(degraded_ ? "degraded " : "") + "queue depth " +
                std::to_string(depth) + " reached (" +
                std::to_string(queued) +
                " jobs waiting); retry after one drains"};

    auto job = std::make_shared<Job>();
    job->id = nextId_++;
    job->seq = nextSeq_++;
    job->spec = std::move(spec);
    job->requestId = requestId;
    job->state = JobState::Queued;
    if (shardMode_ && job->spec.params.islands > 1)
        job->shards.resize(
            static_cast<size_t>(job->spec.params.islands));
    pushStateEventLocked(*job);
    jobs_.emplace(job->id, job);
    if (!requestId.empty())
        requestIds_[requestId] = job->id;
    readyCv_.notify_one();
    eventsCv_.notify_all();
    return job->id;
}

void
JobQueue::setFleetStatus(bool noWorkers, bool degraded)
{
    std::lock_guard<std::mutex> lock(mu_);
    noWorkers_ = noWorkers;
    degraded_ = degraded;
}

void
JobQueue::pushStateEventLocked(Job &job)
{
    Json ev = Json::object();
    ev["type"] = "event";
    ev["event"] = "state";
    ev["id"] = job.id;
    ev["state"] = jobStateName(job.state);
    if (!job.error.empty())
        ev["error"] = job.error;
    job.events.push_back(std::move(ev));
}

void
JobQueue::restore(std::shared_ptr<Job> job)
{
    std::lock_guard<std::mutex> lock(mu_);
    nextId_ = std::max(nextId_, job->id + 1);
    nextSeq_ = std::max(nextSeq_, job->seq + 1);
    if (!job->requestId.empty())
        requestIds_[job->requestId] = job->id;
    job->leaseId = 0;  // leases don't survive a coordinator restart
    if (shardMode_ && job->spec.params.islands > 1 &&
        !isTerminal(job->state))
        // Shards are rebuilt unleased and not-done; resumed claimants
        // fast-forward from the coordinator's shard snapshots, and the
        // recovered migration ledger replays their history.
        job->shards.assign(
            static_cast<size_t>(job->spec.params.islands), JobShard{});
    if (!isTerminal(job->state))
        job->state = JobState::Queued;  // running jobs resume
    if (job->events.empty()) {
        Json ev = Json::object();
        ev["type"] = "event";
        ev["event"] = "state";
        ev["id"] = job->id;
        ev["state"] = jobStateName(job->state);
        job->events.push_back(std::move(ev));
    }
    jobs_[job->id] = job;
    readyCv_.notify_one();
    eventsCv_.notify_all();
}

std::shared_ptr<Job>
JobQueue::nextReadyLocked()
{
    std::shared_ptr<Job> best;
    for (auto &[id, job] : jobs_) {
        if (job->state != JobState::Queued || !job->shards.empty())
            continue;  // sharded jobs only move via per-shard claims
        if (!best || job->spec.priority > best->spec.priority ||
            (job->spec.priority == best->spec.priority &&
             job->seq < best->seq))
            best = job;
    }
    return best;
}

std::shared_ptr<Job>
JobQueue::pop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        if (std::shared_ptr<Job> job = nextReadyLocked()) {
            job->state = JobState::Running;
            Json ev = Json::object();
            ev["type"] = "event";
            ev["event"] = "state";
            ev["id"] = job->id;
            ev["state"] = jobStateName(job->state);
            job->events.push_back(std::move(ev));
            eventsCv_.notify_all();
            return job;
        }
        if (closed_)
            return nullptr;
        readyCv_.wait(lock);
    }
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    readyCv_.notify_all();
    eventsCv_.notify_all();
}

bool
JobQueue::cancel(long id, std::string *why)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        if (why)
            *why = "no job with id " + std::to_string(id);
        return false;
    }
    Job &job = *it->second;
    if (isTerminal(job.state)) {
        if (why)
            *why = "job " + std::to_string(id) + " is already " +
                   jobStateName(job.state);
        return false;
    }
    job.cancelRequested.store(true, std::memory_order_relaxed);
    if (job.state == JobState::Queued) {
        // Never reached a worker: goes terminal right here.
        job.state = JobState::Canceled;
        Json ev = Json::object();
        ev["type"] = "event";
        ev["event"] = "state";
        ev["id"] = job.id;
        ev["state"] = jobStateName(job.state);
        job.events.push_back(std::move(ev));
        eventsCv_.notify_all();
    }
    // Running: the engine's shouldStop poll picks the flag up and the
    // worker publishes the terminal state.
    return true;
}

std::shared_ptr<Job>
JobQueue::find(long id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Job>>
JobQueue::list()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<Job>> out;
    out.reserve(jobs_.size());
    for (auto &[id, job] : jobs_)
        out.push_back(job);
    return out;
}

size_t
JobQueue::queuedCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (auto &[id, job] : jobs_)
        if (job->state == JobState::Queued)
            ++n;
    return n;
}

void
JobQueue::publish(Job &job, Json event)
{
    std::lock_guard<std::mutex> lock(mu_);
    job.events.push_back(std::move(event));
    eventsCv_.notify_all();
}

void
JobQueue::setState(Job &job, JobState state, const std::string &error)
{
    std::lock_guard<std::mutex> lock(mu_);
    job.state = state;
    job.error = error;
    Json ev = Json::object();
    ev["type"] = "event";
    ev["event"] = "state";
    ev["id"] = job.id;
    ev["state"] = jobStateName(state);
    if (!error.empty())
        ev["error"] = error;
    job.events.push_back(std::move(ev));
    eventsCv_.notify_all();
}

void
JobQueue::publishGeneration(Job &job, const core::GenerationStats &gs)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (gs.island >= 0 &&
        gs.island < static_cast<int>(job.shards.size())) {
        // Island shard: per-shard progress mirror; the job-level
        // fields aggregate across islands for one-line status.
        JobShard &sh = job.shards[static_cast<size_t>(gs.island)];
        sh.generation = gs.generation;
        sh.epoch = gs.epoch;
        sh.bestFitness = gs.bestFitness;
        sh.fitnessEvals = gs.fitnessEvals;
        job.generation = std::max(job.generation, gs.generation);
        job.bestFitness = std::max(job.bestFitness, gs.bestFitness);
        long evals = 0;
        for (const JobShard &s : job.shards)
            evals += s.fitnessEvals;
        job.fitnessEvals = evals;
    } else {
        job.generation = gs.generation;
        job.bestFitness = gs.bestFitness;
        job.fitnessEvals = gs.fitnessEvals;
    }
    Json ev = Json::object();
    ev["type"] = "event";
    ev["event"] = "generation";
    ev["id"] = job.id;
    ev["generation"] = gs.generation;
    ev["best_fitness"] = gs.bestFitness;
    ev["fitness_evals"] = gs.fitnessEvals;
    if (gs.island >= 0) {
        ev["island"] = gs.island;
        ev["epoch"] = gs.epoch;
        ev["fleet_cache_hits"] = gs.fleetCacheHits;
    }
    ev["invalid_mutants"] = gs.invalidMutants;
    ev["total_mutants"] = gs.totalMutants;
    ev["quarantined"] = static_cast<long long>(gs.quarantined);
    Json cache = Json::object();
    cache["hits"] = gs.cache.hits;
    cache["misses"] = gs.cache.misses;
    cache["evictions"] = gs.cache.evictions;
    ev["cache"] = std::move(cache);
    Json outcomes = Json::object();
    for (int i = 0; i < core::kEvalOutcomeCount; ++i)
        outcomes[core::evalOutcomeName(
            static_cast<core::EvalOutcome>(i))] =
            gs.outcomes.counts[static_cast<size_t>(i)];
    outcomes["quarantine_hits"] = gs.outcomes.quarantineHits;
    ev["outcomes"] = std::move(outcomes);
    job.events.push_back(std::move(ev));
    eventsCv_.notify_all();
}

bool
JobQueue::waitEvent(long id, size_t have, Json *out)
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = *it->second;
        if (job.events.size() > have) {
            *out = job.events[have];
            return true;
        }
        // All delivered: a terminal job publishes nothing further.
        if (isTerminal(job.state) || closed_)
            return false;
        eventsCv_.wait(lock);
    }
}

void
JobQueue::setResult(Job &job, Json result)
{
    std::lock_guard<std::mutex> lock(mu_);
    job.result = std::move(result);
}

bool
JobQueue::resultFor(long id, JobState *state, Json *result,
                    std::string *error)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second;
    *state = job.state;
    if (isTerminal(job.state)) {
        *result = job.result;
        *error = job.error;
    }
    return true;
}

Json
JobQueue::summaryFor(long id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? Json() : jobSummary(*it->second);
}

std::vector<Json>
JobQueue::summaries()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Json> out;
    out.reserve(jobs_.size());
    for (auto &[id, job] : jobs_)
        out.push_back(jobSummary(*job));
    return out;
}

// ---------------------------------------------------------------------------
// Lease machinery

std::shared_ptr<Job>
JobQueue::tryClaim(const std::string &worker, double leaseSeconds,
                   uint64_t *leaseIdOut, int *islandOut)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return nullptr;
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(leaseSeconds));

    // One priority-then-FIFO scan over whole jobs and island shards:
    // a plain Queued job is claimed whole; a sharded job (island-aware
    // callers only) hands out its lowest unleased, undone shard while
    // any shard is live.
    std::shared_ptr<Job> best;
    int bestShard = -1;
    for (auto &[id, job] : jobs_) {
        int shard = -1;
        if (job->shards.empty()) {
            if (job->state != JobState::Queued)
                continue;
        } else {
            if (!islandOut || isTerminal(job->state) ||
                job->cancelRequested.load(std::memory_order_relaxed))
                continue;
            for (size_t k = 0; k < job->shards.size(); ++k)
                if (!job->shards[k].done &&
                    job->shards[k].leaseId == 0) {
                    shard = static_cast<int>(k);
                    break;
                }
            if (shard < 0)
                continue;
        }
        if (!best || job->spec.priority > best->spec.priority ||
            (job->spec.priority == best->spec.priority &&
             job->seq < best->seq)) {
            best = job;
            bestShard = shard;
        }
    }
    if (!best)
        return nullptr;

    uint64_t lease = nextLease_++;
    if (bestShard >= 0) {
        JobShard &sh = best->shards[static_cast<size_t>(bestShard)];
        sh.leaseId = lease;
        sh.leaseDeadline = deadline;
        sh.worker = worker;
        ++sh.attempts;
        ++best->attempts;
        best->worker = worker;  // last assignee (provenance)
        if (best->state == JobState::Queued) {
            best->state = JobState::Running;
            pushStateEventLocked(*best);
        }
    } else {
        best->state = JobState::Running;
        best->leaseId = lease;
        best->leaseDeadline = deadline;
        best->worker = worker;
        ++best->attempts;
        pushStateEventLocked(*best);
    }
    ++leaseStats_.assignments;
    eventsCv_.notify_all();
    if (leaseIdOut)
        *leaseIdOut = lease;
    if (islandOut)
        *islandOut = bestShard;
    return best;
}

bool
JobQueue::renewLease(long id, uint64_t leaseId, double leaseSeconds,
                     bool *cancelOut)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state != JobState::Running) {
        ++leaseStats_.staleRejections;
        return false;
    }
    Job &job = *it->second;
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(leaseSeconds));
    if (job.leaseId == leaseId) {
        job.leaseDeadline = deadline;
    } else {
        JobShard *held = nullptr;
        for (JobShard &sh : job.shards)
            if (!sh.done && sh.leaseId == leaseId)
                held = &sh;
        if (!held) {
            ++leaseStats_.staleRejections;
            return false;
        }
        held->leaseDeadline = deadline;
    }
    ++leaseStats_.renewals;
    if (cancelOut)
        *cancelOut =
            job.cancelRequested.load(std::memory_order_relaxed);
    return true;
}

std::shared_ptr<Job>
JobQueue::completeLeased(long id, uint64_t leaseId)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->leaseId != leaseId ||
        it->second->state != JobState::Running) {
        ++leaseStats_.staleRejections;
        return nullptr;
    }
    it->second->leaseId = 0;  // lease consumed by the terminal commit
    return it->second;
}

std::shared_ptr<Job>
JobQueue::completeShardLeased(long id, uint64_t leaseId, int *islandOut)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second->state == JobState::Running) {
        Job &job = *it->second;
        for (size_t k = 0; k < job.shards.size(); ++k) {
            JobShard &sh = job.shards[k];
            if (sh.done || sh.leaseId != leaseId)
                continue;
            sh.leaseId = 0;
            sh.done = true;
            if (islandOut)
                *islandOut = static_cast<int>(k);
            return it->second;
        }
    }
    ++leaseStats_.staleRejections;
    return nullptr;
}

std::vector<int>
JobQueue::reapCanceledShards(Job &job)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<int> reaped;
    if (!job.cancelRequested.load(std::memory_order_relaxed) ||
        isTerminal(job.state))
        return reaped;
    for (size_t k = 0; k < job.shards.size(); ++k) {
        JobShard &sh = job.shards[k];
        if (sh.done || sh.leaseId != 0)
            continue;  // leased shards wind down via the cancel flag
        sh.done = true;
        reaped.push_back(static_cast<int>(k));
    }
    return reaped;
}

void
JobQueue::requeueLocked(Job &job)
{
    job.leaseId = 0;
    ++leaseStats_.requeues;
    if (job.cancelRequested.load(std::memory_order_relaxed)) {
        // The submitter already gave up on it; don't re-run.
        job.state = JobState::Canceled;
    } else {
        job.state = JobState::Queued;
    }
    pushStateEventLocked(job);
}

std::vector<long>
JobQueue::requeueExpired()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto now = std::chrono::steady_clock::now();
    std::vector<long> requeued;
    for (auto &[id, job] : jobs_) {
        if (job->state != JobState::Running)
            continue;
        bool swept = false;
        for (JobShard &sh : job->shards) {
            if (sh.done || sh.leaseId == 0 || sh.leaseDeadline > now)
                continue;
            // The shard goes back to claimable; the job stays Running
            // (its other islands keep working) and the next claimant
            // resumes from the coordinator's shard snapshot.
            sh.leaseId = 0;
            ++leaseStats_.expirations;
            ++leaseStats_.requeues;
            swept = true;
        }
        if (swept)
            requeued.push_back(id);
        if (job->leaseId == 0 || job->leaseDeadline > now)
            continue;
        ++leaseStats_.expirations;
        requeueLocked(*job);
        requeued.push_back(id);
    }
    if (!requeued.empty()) {
        readyCv_.notify_all();
        eventsCv_.notify_all();
    }
    return requeued;
}

std::vector<long>
JobQueue::requeueOwnedBy(const std::string &worker)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<long> requeued;
    for (auto &[id, job] : jobs_) {
        if (job->state != JobState::Running)
            continue;
        bool swept = false;
        for (JobShard &sh : job->shards) {
            if (sh.done || sh.leaseId == 0 || sh.worker != worker)
                continue;
            sh.leaseId = 0;
            ++leaseStats_.requeues;
            swept = true;
        }
        if (swept)
            requeued.push_back(id);
        if (job->leaseId == 0 || job->worker != worker)
            continue;
        requeueLocked(*job);
        requeued.push_back(id);
    }
    if (!requeued.empty()) {
        readyCv_.notify_all();
        eventsCv_.notify_all();
    }
    return requeued;
}

std::chrono::steady_clock::time_point
JobQueue::nextLeaseDeadline()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::chrono::steady_clock::time_point soonest{};
    auto consider = [&](std::chrono::steady_clock::time_point t) {
        if (soonest == std::chrono::steady_clock::time_point{} ||
            t < soonest)
            soonest = t;
    };
    for (auto &[id, job] : jobs_) {
        if (job->state != JobState::Running)
            continue;
        if (job->leaseId != 0)
            consider(job->leaseDeadline);
        for (const JobShard &sh : job->shards)
            if (!sh.done && sh.leaseId != 0)
                consider(sh.leaseDeadline);
    }
    return soonest;
}

LeaseStats
JobQueue::leaseStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    return leaseStats_;
}

Json
jobSummary(const Job &job)
{
    Json j = Json::object();
    j["id"] = job.id;
    j["state"] = jobStateName(job.state);
    j["priority"] = job.spec.priority;
    j["dut"] = job.spec.dutModule;
    j["generation"] = job.generation;
    j["best_fitness"] = job.bestFitness;
    j["fitness_evals"] = job.fitnessEvals;
    if (!job.worker.empty())
        j["worker"] = job.worker;
    if (job.attempts > 0)
        j["attempts"] = job.attempts;
    if (!job.error.empty())
        j["error"] = job.error;
    if (!job.shards.empty()) {
        j["island_count"] = static_cast<long long>(job.shards.size());
        Json islands = Json::array();
        for (size_t k = 0; k < job.shards.size(); ++k) {
            const JobShard &sh = job.shards[k];
            Json s = Json::object();
            s["island"] = static_cast<long long>(k);
            s["done"] = sh.done;
            s["generation"] = sh.generation;
            s["epoch"] = sh.epoch;
            s["best_fitness"] = sh.bestFitness;
            s["fitness_evals"] = sh.fitnessEvals;
            s["attempts"] = sh.attempts;
            if (!sh.worker.empty())
                s["worker"] = sh.worker;
            islands.push(std::move(s));
        }
        j["islands"] = std::move(islands);
    }
    return j;
}

} // namespace cirfix::service
