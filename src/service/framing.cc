#include "service/framing.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cirfix::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Absolute deadline for one whole frame; a zero budget never expires. */
struct Deadline
{
    explicit Deadline(double seconds)
    {
        if (seconds > 0.0)
            at = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds));
    }

    bool armed() const { return at != Clock::time_point{}; }

    /** Remaining budget in whole milliseconds for poll(); -1 when
     *  unarmed (block forever), 0 when already expired. */
    int
    remainingMs() const
    {
        if (!armed())
            return -1;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at - Clock::now())
                        .count();
        if (left <= 0)
            return 0;
        // Round up so a 0.5 ms remainder polls for 1 ms instead of
        // spinning on a zero timeout.
        return static_cast<int>(left) + 1;
    }

    Clock::time_point at{};
};

[[noreturn]] void
ioError(const char *what)
{
    int err = errno;
    std::string msg =
        std::string("frame ") + what + ": " + std::strerror(err);
    if (err == EPIPE || err == ECONNRESET || err == ESHUTDOWN)
        throw ConnectionClosed(msg);
    throw FrameError(msg);
}

/** Block until @p fd is ready for @p events or the deadline expires. */
void
waitReady(int fd, short events, const Deadline &deadline,
          const char *what)
{
    while (true) {
        pollfd pfd{fd, events, 0};
        int timeout = deadline.remainingMs();
        if (timeout == 0)
            throw FrameTimeout(std::string("frame ") + what +
                               " timed out");
        int rc = ::poll(&pfd, 1, timeout);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            ioError(what);
        }
        if (rc == 0)
            throw FrameTimeout(std::string("frame ") + what +
                               " timed out");
        // Readiness (or error/hangup — the read/send after us will
        // surface the precise failure).
        return;
    }
}

/** send() with MSG_NOSIGNAL, falling back to write() for non-socket
 *  fds (pipes in tests); loops over EINTR. When a deadline is armed
 *  the send is non-blocking (poll supplied readiness) so a peer with
 *  a full receive buffer cannot block us past the deadline. Returns
 *  bytes written, -1 on error, -2 on EAGAIN (poll again). */
ssize_t
sendSome(int fd, const char *buf, size_t n, bool nonblock)
{
    int flags = MSG_NOSIGNAL | (nonblock ? MSG_DONTWAIT : 0);
    while (true) {
        ssize_t w = ::send(fd, buf, n, flags);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, buf, n);
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && nonblock &&
            (errno == EAGAIN || errno == EWOULDBLOCK))
            return -2;
        return w;
    }
}

void
writeAll(int fd, const char *buf, size_t n, const Deadline &deadline)
{
    size_t off = 0;
    while (off < n) {
        if (deadline.armed())
            waitReady(fd, POLLOUT, deadline, "write");
        ssize_t w =
            sendSome(fd, buf + off, n - off, deadline.armed());
        if (w == -2)
            continue;  // raced another writer to the buffer space
        if (w < 0)
            ioError("write failed");
        if (w == 0)
            throw ConnectionClosed("frame write failed: peer gone");
        off += static_cast<size_t>(w);
    }
}

/** @return bytes actually read (== n), or 0 on immediate EOF when
 *  @p eof_ok; throws on mid-read EOF, error, or deadline expiry. */
size_t
readAll(int fd, char *buf, size_t n, bool eof_ok,
        const Deadline &deadline)
{
    size_t off = 0;
    while (off < n) {
        if (deadline.armed())
            waitReady(fd, POLLIN, deadline, "read");
        ssize_t r = ::read(fd, buf + off, n - off);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("read failed");
        }
        if (r == 0) {
            if (off == 0 && eof_ok)
                return 0;
            throw ConnectionClosed(
                "frame truncated: peer closed mid-frame after " +
                std::to_string(off) + " of " + std::to_string(n) +
                " bytes");
        }
        off += static_cast<size_t>(r);
    }
    return off;
}

} // namespace

void
writeFrame(int fd, const std::string &payload, double deadlineSeconds)
{
    if (payload.size() > kMaxFrameBytes)
        throw FrameError("frame payload of " +
                         std::to_string(payload.size()) +
                         " bytes exceeds the " +
                         std::to_string(kMaxFrameBytes) +
                         "-byte limit");
    Deadline deadline(deadlineSeconds);
    uint32_t n = static_cast<uint32_t>(payload.size());
    char prefix[4] = {static_cast<char>(n >> 24),
                      static_cast<char>(n >> 16),
                      static_cast<char>(n >> 8),
                      static_cast<char>(n)};
    writeAll(fd, prefix, sizeof prefix, deadline);
    writeAll(fd, payload.data(), payload.size(), deadline);
}

bool
readFrame(int fd, std::string &payload, double deadlineSeconds)
{
    Deadline deadline(deadlineSeconds);
    char prefix[4];
    if (readAll(fd, prefix, sizeof prefix, /*eof_ok=*/true, deadline) ==
        0)
        return false;
    uint32_t n = (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint32_t>(
                     static_cast<unsigned char>(prefix[3]));
    if (n > kMaxFrameBytes)
        throw FrameError(
            "frame length prefix of " + std::to_string(n) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte limit (corrupt stream?)");
    payload.resize(n);
    if (n > 0)
        readAll(fd, payload.data(), n, /*eof_ok=*/false, deadline);
    return true;
}

} // namespace cirfix::service
