#include "service/framing.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace cirfix::service {

namespace {

[[noreturn]] void
ioError(const char *what)
{
    throw std::runtime_error(std::string("frame ") + what + ": " +
                             std::strerror(errno));
}

/** send() with MSG_NOSIGNAL, falling back to write() for non-socket
 *  fds (pipes in tests); loops over EINTR. Returns bytes written or
 *  -1. */
ssize_t
sendSome(int fd, const char *buf, size_t n)
{
    while (true) {
        ssize_t w = ::send(fd, buf, n, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, buf, n);
        if (w < 0 && errno == EINTR)
            continue;
        return w;
    }
}

void
writeAll(int fd, const char *buf, size_t n)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = sendSome(fd, buf + off, n - off);
        if (w <= 0)
            ioError("write failed");
        off += static_cast<size_t>(w);
    }
}

/** @return bytes actually read (== n), or 0 on immediate EOF when
 *  @p eof_ok; throws on mid-read EOF or error. */
size_t
readAll(int fd, char *buf, size_t n, bool eof_ok)
{
    size_t off = 0;
    while (off < n) {
        ssize_t r = ::read(fd, buf + off, n - off);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            ioError("read failed");
        }
        if (r == 0) {
            if (off == 0 && eof_ok)
                return 0;
            throw std::runtime_error(
                "frame truncated: peer closed mid-frame after " +
                std::to_string(off) + " of " + std::to_string(n) +
                " bytes");
        }
        off += static_cast<size_t>(r);
    }
    return off;
}

} // namespace

void
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw std::runtime_error("frame payload of " +
                                 std::to_string(payload.size()) +
                                 " bytes exceeds the " +
                                 std::to_string(kMaxFrameBytes) +
                                 "-byte limit");
    uint32_t n = static_cast<uint32_t>(payload.size());
    char prefix[4] = {static_cast<char>(n >> 24),
                      static_cast<char>(n >> 16),
                      static_cast<char>(n >> 8),
                      static_cast<char>(n)};
    writeAll(fd, prefix, sizeof prefix);
    writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload)
{
    char prefix[4];
    if (readAll(fd, prefix, sizeof prefix, /*eof_ok=*/true) == 0)
        return false;
    uint32_t n = (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint32_t>(
                      static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint32_t>(
                     static_cast<unsigned char>(prefix[3]));
    if (n > kMaxFrameBytes)
        throw std::runtime_error(
            "frame length prefix of " + std::to_string(n) +
            " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
            "-byte limit (corrupt stream?)");
    payload.resize(n);
    if (n > 0)
        readAll(fd, payload.data(), n, /*eof_ok=*/false);
    return true;
}

} // namespace cirfix::service
