#pragma once

/**
 * @file
 * Stream transport for the repair service: one abstraction over
 * Unix-domain and TCP sockets carrying the same length-prefixed
 * frames, so the daemon, the fleet coordinator, and every client
 * speak identical bytes whether the peer is on this host or another.
 *
 * Addresses are strings:
 *
 *   unix:/path/to.sock       Unix-domain socket
 *   /path/to.sock            ditto (bare paths stay valid — the PR-3
 *                            CLI flags keep working unchanged)
 *   tcp:host:port            TCP; host is an IPv4 literal or a name
 *                            resolved via getaddrinfo; port 0 binds an
 *                            ephemeral port (boundAddress() reports it)
 *
 * Conn wraps one connected fd with framed I/O, a per-connection I/O
 * deadline, and the NetFaultInjector hooks — every chaos-test fault
 * (drops, stalls, partial frames, partitions) is injected here, below
 * the protocol layer, exactly where a real network would bite.
 *
 * dial() bounds connection establishment with a deadline (nonblocking
 * connect + poll); dialRetry() adds bounded exponential backoff with
 * deterministic jitter, the client-side answer to a coordinator that
 * is restarting or briefly partitioned.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "service/framing.h"

namespace cirfix::service {

/** Transport-level failure distinct from framing errors (bad address,
 *  connect refusal, bind failure). */
class TransportError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** dial()'s connect deadline expired (distinct from refusal so the
 *  CLI can map it to its timeout exit code). */
class DialTimeout : public TransportError
{
  public:
    using TransportError::TransportError;
};

/** A parsed endpoint address. */
struct Address
{
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    std::string path;       //!< Unix socket path
    std::string host;       //!< TCP host (literal or name)
    int port = 0;           //!< TCP port (0 = ephemeral when binding)

    /** Parse "unix:PATH", "tcp:HOST:PORT", or a bare path.
     *  @throws TransportError on a malformed address. */
    static Address parse(const std::string &text);
    /** Canonical string form ("unix:/run/x.sock", "tcp:127.0.0.1:9000"). */
    std::string str() const;
};

/**
 * One connected stream. Framed I/O runs through the fault-injection
 * hooks and honors the connection's I/O deadline (0 = block forever).
 * Thread-compatible, not thread-safe: callers serialize access per
 * connection (the server gives each connection its own thread; the
 * worker speaks strictly request/response).
 */
class Conn
{
  public:
    /** Take ownership of a connected @p fd. */
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();

    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }

    /** Per-frame I/O budget for both directions; 0 disables. */
    void setIoDeadline(double seconds) { ioDeadline_ = seconds; }
    double ioDeadline() const { return ioDeadline_; }

    /** Write one frame (fault hooks + deadline applied).
     *  @throws ConnectionClosed / FrameTimeout / FrameError. */
    void writeFrame(const std::string &payload);

    /** Read one frame; false on clean EOF between frames.
     *  @throws ConnectionClosed / FrameTimeout / FrameError. */
    bool readFrame(std::string *payload);

    /** Half-close both directions, waking any blocked peer loop
     *  (including our own reader in another thread); idempotent. */
    void shutdown();

    /** Close the fd now (normally the destructor's job). */
    void close();

  private:
    int fd_ = -1;
    double ioDeadline_ = 0.0;
};

/**
 * Connect to @p addr with a deadline (0 = block forever).
 * @throws TransportError on refusal/unreachability/timeout (the
 * injector's partition hook surfaces here as a refusal).
 */
std::unique_ptr<Conn> dial(const Address &addr,
                           double timeoutSeconds = 10.0);

/** Bounded exponential backoff with deterministic jitter. */
struct RetryPolicy
{
    int maxAttempts = 1;          //!< 1 = no retry
    double connectTimeout = 10.0; //!< per-attempt deadline (seconds)
    double initialDelay = 0.05;   //!< before the 2nd attempt
    double maxDelay = 2.0;        //!< backoff ceiling
    double multiplier = 2.0;
    /** Jitter stream seed; same seed, same delays (determinism). */
    uint64_t jitterSeed = 0x9e3779b97f4a7c15ull;
};

/**
 * dial() with retry: attempt k waits
 * min(maxDelay, initialDelay * multiplier^(k-1)) * U where U is a
 * deterministic jitter factor in [0.5, 1.5). @p attemptsOut (optional)
 * receives the number of attempts made.
 * @throws TransportError after the last attempt fails.
 */
std::unique_ptr<Conn> dialRetry(const Address &addr,
                                const RetryPolicy &policy,
                                int *attemptsOut = nullptr);

/**
 * A bound, listening endpoint. The listening fd is non-blocking:
 * accept() after a poll() can never hang on a connection that
 * vanished between the two calls (the PR-3 teardown relied on
 * close() racing the poll; this removes the race by construction).
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;
    Listener(Listener &&other) noexcept { *this = std::move(other); }
    Listener &operator=(Listener &&other) noexcept;

    /** Bind + listen on @p addr. Unix paths are unlinked first (stale
     *  socket from a kill); TCP sets SO_REUSEADDR and supports port 0.
     *  @throws TransportError on failure. */
    static Listener bind(const Address &addr, int backlog = 64);

    /** The actual bound address (reports the ephemeral TCP port). */
    const Address &boundAddress() const { return addr_; }

    int fd() const { return fd_; }

    /** Accept one pending connection; nullptr when none is ready
     *  (EAGAIN) — pair with poll() on fd(). */
    std::unique_ptr<Conn> accept();

    /** Close the listening fd and (Unix) unlink the path. Idempotent. */
    void close();

  private:
    int fd_ = -1;
    Address addr_;
};

} // namespace cirfix::service
