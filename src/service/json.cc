#include "service/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cirfix::service {

namespace {

[[noreturn]] void
typeError(const char *want, Json::Kind got)
{
    static const char *names[] = {"null",   "bool",  "int",   "double",
                                  "string", "array", "object"};
    throw std::runtime_error(std::string("json: expected ") + want +
                             ", got " +
                             names[static_cast<int>(got)]);
}

void
escapeTo(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("json: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't':
            if (consume("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consume("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consume("null"))
                return Json(nullptr);
            fail("bad literal");
          default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            obj[key] = value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; the
                // protocol's payloads are ASCII Verilog/CSV text, so
                // surrogate pairs are rejected rather than handled).
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    fail("surrogate \\u escapes are not supported");
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        char *end = nullptr;
        if (integral) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end && *end == '\0' && errno != ERANGE)
                return Json(v);
        }
        end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail("bad number '" + tok + "'");
        return Json(d);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

void
dumpTo(const Json &v, std::string &out)
{
    switch (v.kind()) {
      case Json::Kind::Null: out += "null"; break;
      case Json::Kind::Bool: out += v.asBool() ? "true" : "false"; break;
      case Json::Kind::Int: out += std::to_string(v.asInt()); break;
      case Json::Kind::Double: {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v.asDouble());
        out += buf;
        break;
      }
      case Json::Kind::String: escapeTo(v.asString(), out); break;
      case Json::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &e : v.items()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(e, out);
        }
        out += ']';
        break;
      }
      case Json::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, val] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            escapeTo(key, out);
            out += ':';
            dumpTo(val, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        typeError("bool", kind_);
    return bool_;
}

int64_t
Json::asInt() const
{
    if (kind_ != Kind::Int)
        typeError("int", kind_);
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ != Kind::Double)
        typeError("number", kind_);
    return double_;
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::String)
        typeError("string", kind_);
    return string_;
}

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    return object_[key];
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

void
Json::remove(const std::string &key)
{
    if (kind_ == Kind::Object)
        object_.erase(key);
}

const std::map<std::string, Json> &
Json::members() const
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    return object_;
}

std::string
Json::str(const std::string &key, const std::string &dflt) const
{
    const Json *v = find(key);
    return v && v->isString() ? v->asString() : dflt;
}

int64_t
Json::num(const std::string &key, int64_t dflt) const
{
    const Json *v = find(key);
    return v && v->kind() == Kind::Int ? v->asInt() : dflt;
}

double
Json::real(const std::string &key, double dflt) const
{
    const Json *v = find(key);
    return v && v->isNumber() ? v->asDouble() : dflt;
}

bool
Json::flag(const std::string &key, bool dflt) const
{
    const Json *v = find(key);
    return v && v->kind() == Kind::Bool ? v->asBool() : dflt;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    array_.push_back(std::move(v));
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    return array_;
}

size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    typeError("array or object", kind_);
}

bool
Json::operator==(const Json &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::Int: return int_ == other.int_;
      case Kind::Double: return double_ == other.double_;
      case Kind::String: return string_ == other.string_;
      case Kind::Array: return array_ == other.array_;
      case Kind::Object: return object_ == other.object_;
    }
    return false;
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace cirfix::service
