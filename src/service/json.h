#pragma once

/**
 * @file
 * Minimal JSON value type for the repair-service wire protocol.
 *
 * The daemon speaks length-prefixed JSON frames (see framing.h), so it
 * needs exactly a parser, a serializer, and a convenient value type —
 * not a general-purpose JSON library. Design points that matter for
 * the protocol:
 *
 *  - Integers are kept as int64_t (not coerced through double), so
 *    evaluation counters and seeds round-trip exactly.
 *  - Objects use an ordered map, so dump() output is deterministic:
 *    two equal values serialize to identical bytes, which the tests
 *    (and the bit-identical-resume acceptance check) rely on.
 *  - parse() throws std::runtime_error with a byte offset on any
 *    malformed input; it never returns partial values.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cirfix::service {

class Json
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(long v) : kind_(Kind::Int), int_(v) {}
    Json(long long v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned long long v)
        : kind_(Kind::Int), int_(static_cast<int64_t>(v))
    {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array() { return Json(Kind::Array); }
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /** Typed accessors; throw std::runtime_error on kind mismatch. */
    bool asBool() const;
    int64_t asInt() const;        //!< Int only (no silent truncation)
    double asDouble() const;      //!< Int or Double
    const std::string &asString() const;

    // -------- object interface --------
    /** Insert-or-get a member (makes this an object if Null). */
    Json &operator[](const std::string &key);
    /** Member lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key); }
    void remove(const std::string &key);
    const std::map<std::string, Json> &members() const;

    /** Typed member getters with defaults (object kind only). */
    std::string str(const std::string &key,
                    const std::string &dflt = "") const;
    int64_t num(const std::string &key, int64_t dflt = 0) const;
    double real(const std::string &key, double dflt = 0.0) const;
    bool flag(const std::string &key, bool dflt = false) const;

    // -------- array interface --------
    /** Append an element (makes this an array if Null). */
    void push(Json v);
    const std::vector<Json> &items() const;
    size_t size() const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /** Serialize; deterministic (sorted keys, %.17g doubles). */
    std::string dump() const;

    /** Parse a complete JSON document; throws std::runtime_error. */
    static Json parse(const std::string &text);

  private:
    explicit Json(Kind k) : kind_(k) {}

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;
};

} // namespace cirfix::service
