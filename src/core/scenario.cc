#include "core/scenario.h"

#include <stdexcept>

#include "sim/elaborate.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cirfix::core {

using namespace verilog;
using sim::Design;
using sim::ProbeConfig;
using sim::RunLimits;
using sim::TraceRecorder;

const char *
paperOutcomeName(PaperOutcome o)
{
    switch (o) {
      case PaperOutcome::Correct: return "correct";
      case PaperOutcome::PlausibleOnly: return "plausible-only";
      case PaperOutcome::NoRepair: return "no-repair";
    }
    return "?";
}

namespace {

int
countLoc(const std::string &src)
{
    int n = 0;
    bool nonblank = false;
    for (char c : src) {
        if (c == '\n') {
            if (nonblank)
                ++n;
            nonblank = false;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            nonblank = true;
        }
    }
    if (nonblank)
        ++n;
    return n;
}

/** Parse DUT + testbench into one numbered file. */
std::shared_ptr<const SourceFile>
parseCombined(const std::string &dut_src, const std::string &tb_src)
{
    return std::shared_ptr<const SourceFile>(
        parse(dut_src + "\n" + tb_src));
}

Trace
simulateAndRecord(std::shared_ptr<const SourceFile> file,
                  const std::string &top, const ProbeConfig &probe,
                  const RunLimits &limits)
{
    auto design = sim::elaborate(std::move(file), top);
    TraceRecorder rec(*design, probe);
    design->run(limits);
    return rec.takeTrace();
}

} // namespace

int
ProjectSpec::projectLoc() const
{
    return countLoc(goldenSource);
}

int
ProjectSpec::testbenchLoc() const
{
    return countLoc(testbenchSource);
}

std::string
applyRewrites(const std::string &source,
              const std::vector<Rewrite> &rewrites)
{
    std::string out = source;
    for (const Rewrite &rw : rewrites) {
        size_t pos = out.find(rw.from);
        if (pos == std::string::npos)
            throw std::runtime_error(
                "defect rewrite pattern not found in golden source: \"" +
                rw.from + "\"");
        out.replace(pos, rw.from.size(), rw.to);
    }
    return out;
}

Trace
recordGoldenTrace(const ProjectSpec &project, bool verify_bench,
                  const RunLimits &limits)
{
    const std::string &tb_src =
        verify_bench ? project.verifySource : project.testbenchSource;
    const std::string &top =
        verify_bench ? project.verifyModule : project.tbModule;
    auto file = parseCombined(project.goldenSource, tb_src);
    ProbeConfig probe = sim::deriveProbeConfig(*file, top);
    return simulateAndRecord(std::move(file), top, probe, limits);
}

Scenario
buildScenarioFromSources(const ProjectSpec &project,
                         const std::string &faulty_dut_src,
                         const RunLimits &limits)
{
    Scenario sc;
    sc.project = &project;

    // Expected behavior: record from the previously-functioning design
    // (paper Section 4.1.2).
    auto golden = parseCombined(project.goldenSource,
                                project.testbenchSource);
    sc.probe = sim::deriveProbeConfig(*golden, project.tbModule);
    sc.oracle =
        simulateAndRecord(golden, project.tbModule, sc.probe, limits);

    sc.faulty = parseCombined(faulty_dut_src, project.testbenchSource);

    // Held-out verification data.
    sc.verifySource = project.verifySource;
    sc.verifyModule = project.verifyModule;
    auto verify_golden =
        parseCombined(project.goldenSource, project.verifySource);
    sc.verifyProbe =
        sim::deriveProbeConfig(*verify_golden, project.verifyModule);
    sc.verifyOracle = simulateAndRecord(
        verify_golden, project.verifyModule, sc.verifyProbe, limits);

    return sc;
}

Scenario
buildScenario(const ProjectSpec &project, const DefectSpec &defect,
              const RunLimits &limits)
{
    // Transplant the defect, then assemble as for any faulty source.
    Scenario sc = buildScenarioFromSources(
        project, applyRewrites(project.goldenSource, defect.rewrites),
        limits);
    sc.defect = &defect;
    return sc;
}

std::string
patchedDutSource(const Scenario &scenario, const Patch &patch)
{
    auto patched = applyPatch(*scenario.faulty, patch);
    auto tb_file = parse(scenario.project->testbenchSource);
    std::string dut_src;
    for (const auto &m : patched->modules)
        if (!tb_file->findModule(m->name))
            dut_src += print(*m) + "\n";
    return dut_src;
}

RepairEngine
Scenario::makeEngine(const EngineConfig &config) const
{
    const std::string &dut = defect && !defect->repairModule.empty()
                                 ? defect->repairModule
                                 : project->dutModule;
    return RepairEngine(faulty, project->tbModule, dut, probe, oracle,
                        config);
}

FitnessResult
Scenario::baselineFitness(const EngineConfig &config) const
{
    RepairEngine engine = makeEngine(config);
    return engine.evaluate(Patch{}).fit;
}

bool
checkCorrectness(const Scenario &scenario, const Patch &patch,
                 const RunLimits &limits)
{
    // Apply the repair, extract the patched DUT modules, and pair them
    // with the held-out verification testbench.
    auto patched = applyPatch(*scenario.faulty, patch);
    std::string dut_src;
    auto tb_file = parse(scenario.verifySource);
    for (auto &m : patched->modules) {
        if (!tb_file->findModule(m->name))
            dut_src += print(*m) + "\n";
    }
    auto combined = std::shared_ptr<const SourceFile>(
        parse(dut_src + "\n" + scenario.verifySource));
    Trace t;
    try {
        t = simulateAndRecord(combined, scenario.verifyModule,
                              scenario.verifyProbe, limits);
    } catch (const std::exception &) {
        // Same containment contract as candidate evaluation: any
        // failure of the verification simulation (elaboration error,
        // abort escaping a non-process context, OOM) means the
        // candidate is not a correct repair — never a crashed run.
        return false;
    }
    FitnessResult fit = evaluateFitness(t, scenario.verifyOracle);
    return fit.plausible();
}

} // namespace cirfix::core
