#pragma once

/**
 * @file
 * Witness-driven oracle hardening.
 *
 * A plausible patch that fails the held-out verification bench is
 * overfit (paper Section 6.2): it satisfies the repair testbench
 * without restoring the intended behavior. This module mechanizes the
 * countermeasure the paper leaves to manual inspection — when a patch
 * overfits, search for a short *discriminating* stimulus under which
 * the golden design and the patched design visibly disagree, shrink it
 * with delta debugging to a minimal witness, and install it as an
 * auxiliary oracle bench (OracleBench) the repair engine scores every
 * future candidate against. The overfit patch is thereby demoted (it
 * no longer reaches perfect combined fitness) and the search resumes
 * from its discovery-point snapshot under the hardened oracle.
 *
 * The witness search is coverage-guided random testing: candidate
 * stimuli are random input-step matrices (plus mutations of previously
 * novel ones, where novelty is a fresh fingerprint of the patched
 * design's response trace), each simulated on both designs and scored
 * with the bit-level fitness function. Any imperfect score — or a
 * patched-design simulation pathology under a stimulus the golden
 * design survives — discriminates. Because the installed bench's
 * expected trace is recorded from the golden design itself, a witness
 * can never reject the correct design (golden invariance holds by
 * construction, and test_witness.cc checks it for every generated
 * witness).
 *
 * The search runs single-threaded on one RNG stream, so witnesses are
 * bit-identical per seed at any engine thread count.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/oracle.h"
#include "core/scenario.h"
#include "core/snapshot.h"

namespace cirfix::core {

/** Knobs for the witness search. */
struct WitnessOptions
{
    uint64_t seed = 1;
    /** Candidate stimuli simulated before giving up. */
    int maxTries = 400;
    /** Longest candidate stimulus, in clock cycles (= input steps). */
    int maxCycles = 24;
    /** Simulation bounds for each golden/patched probe run. */
    sim::RunLimits simLimits{100'000, 150'000, 300'000};
    /** Half clock period of the generated bench (posedges at
     *  half, 3*half, ...; inputs step every 2*half). */
    int clockHalfPeriod = 5;
    /** Hardening rounds hardenedRepair() attempts before reporting
     *  the run plausible-but-overfit. */
    int maxRounds = 4;
    /** Fitness parameters used to compare golden vs patched traces. */
    FitnessParams fitness;
};

/** One drivable DUT input (clock excluded). */
struct WitnessInput
{
    std::string name;
    int width = 1;
};

/** What the generated bench drives and observes. */
struct WitnessInterface
{
    std::string dutModule;
    /** DUT clock port; empty when the DUT has none (the bench still
     *  runs an internal sampling clock). */
    std::string clockPort;
    std::vector<WitnessInput> inputs;
    /** Observed ports (outputs and inouts), with resolved widths. */
    std::vector<WitnessInput> outputs;
};

/**
 * A stimulus: one row per clock cycle, one value per WitnessInterface
 * input (row k is applied before posedge k samples the response).
 */
using StepMatrix = std::vector<std::vector<uint64_t>>;

/** Outcome of a witness search. */
struct WitnessSearchResult
{
    bool found = false;
    StepMatrix steps;             //!< minimized discriminating stimulus
    size_t stepsBeforeMin = 0;    //!< stimulus length at discovery
    int tries = 0;                //!< candidate stimuli simulated
    int minimizeTests = 0;        //!< ddmin predicate evaluations
    size_t coveragePool = 0;      //!< novel-response stimuli collected
    /** Installable bench: minimized stimulus testbench + the golden
     *  design's recorded behavior under it. Valid only when found. */
    OracleBench bench;
};

/**
 * Inspect @p dut_module inside @p file: classify ports into clock /
 * drivable inputs (with resolved widths) / observed outputs.
 * @throws std::runtime_error when the module does not exist.
 */
WitnessInterface deriveWitnessInterface(const verilog::SourceFile &file,
                                        const std::string &dut_module);

/**
 * Generate the witness testbench text for @p steps: an internal
 * free-running clock, input assignments stepped every full clock
 * period, DUT instance named "dut", and $finish after the last cycle's
 * sample. Deterministic function of its arguments.
 */
std::string makeWitnessBenchSource(const WitnessInterface &iface,
                                   const StepMatrix &steps,
                                   const std::string &tb_module,
                                   int clock_half_period);

/** Probe configuration matching makeWitnessBenchSource() output. */
sim::ProbeConfig witnessProbe(const WitnessInterface &iface);

/**
 * Simulate @p dut_src under @p bench and return the recorded trace.
 * @throws on parse/elaboration failure; simulation pathologies
 * (budget exhaustion inside a process) end the run and return the
 * partial trace, exactly as candidate evaluation would observe it.
 */
Trace runWitnessBench(const std::string &dut_src,
                      const OracleBench &bench,
                      const sim::RunLimits &limits = {});

/**
 * Delta-debugging minimization of a discriminating stimulus: greedily
 * remove chunks of steps (halving chunk size down to single rows) while
 * @p discriminates stays true, then sweep to a 1-minimal result —
 * removing any single remaining row breaks discrimination. Idempotent.
 * @p tests_out (optional) counts predicate evaluations.
 */
StepMatrix minimizeWitnessSteps(
    const StepMatrix &steps,
    const std::function<bool(const StepMatrix &)> &discriminates,
    int *tests_out = nullptr);

/**
 * Search for a minimal stimulus under which @p patched_dut_src and
 * @p golden_dut_src disagree on some sampled output. On success the
 * returned bench carries the minimized testbench and the golden
 * design's trace under it, ready for EngineConfig::witnessBenches.
 */
WitnessSearchResult findWitness(const std::string &golden_dut_src,
                                const std::string &patched_dut_src,
                                const std::string &dut_module,
                                const WitnessOptions &opts,
                                const std::string &tb_module,
                                const std::string &provenance);

/**
 * Migrate a snapshot to @p engine's witness set: install the engine's
 * benches as the snapshot's oracle provenance, drop the (stale) fitness
 * cache, re-score every population member under the hardened oracle,
 * and recompute bestSeen over the re-scored population. Counters,
 * RNG stream, trajectory and quarantine are preserved — the resumed
 * search continues deterministically from the same decision point,
 * just with the demoted patches scored honestly.
 */
void rehardenSnapshot(const RepairEngine &engine, EngineState &state);

/** Outcome of a hardened repair run. */
struct HardenedRepairResult
{
    RepairResult result;       //!< final round's repair result
    bool correct = false;      //!< final patch passed the held-out bench
    int rounds = 0;            //!< repair rounds executed (>= 1)
    int overfitKills = 0;      //!< overfit patches demoted by a witness
    int resumedFromSnapshot = 0;  //!< rounds continued from a snapshot
    int witnessTries = 0;      //!< candidate stimuli across all searches
    std::vector<OracleBench> witnesses;  //!< benches installed, in order
};

/**
 * The hardened repair loop: run the engine; when the winner fails the
 * held-out verification bench, find a witness against it, install the
 * bench, and resume from the discovery-point snapshot (requires
 * config.snapshotPath; with an empty path each round restarts from
 * scratch instead). Stops on a correct repair, a round with no repair,
 * a failed witness search, or WitnessOptions::maxRounds exhaustion.
 */
HardenedRepairResult hardenedRepair(const Scenario &scenario,
                                    const EngineConfig &config,
                                    const WitnessOptions &opts);

} // namespace cirfix::core
