#pragma once

/**
 * @file
 * Expected-behavior oracles (paper Sections 4.1.2 and 5.4).
 *
 * The oracle is a trace of expected output values, normally recorded
 * by simulating a previously-functioning version of the design with
 * the instrumented testbench. RQ4 studies how repair quality degrades
 * as the oracle is thinned: thinOracle() keeps only a fraction of the
 * annotation rows (evenly spaced), modeling a developer who annotates
 * expected values only at certain time intervals.
 *
 * Witness-driven hardening (see witness.h) extends a run's oracle with
 * auxiliary OracleBench records: each carries its own testbench source,
 * probe configuration and golden-recorded expected trace, and every
 * candidate must match all of them to count as plausible.
 */

#include <string>

#include "core/fitness.h"
#include "sim/probe.h"
#include "sim/trace.h"

namespace cirfix::core {

using sim::Trace;

/**
 * Keep roughly @p fraction of the oracle rows, evenly spaced.
 * fraction >= 1 returns the oracle unchanged; the first and last rows
 * are always retained so the observation window is preserved.
 */
Trace thinOracle(const Trace &oracle, double fraction);

/**
 * A self-contained auxiliary oracle: a generated testbench plus the
 * expected behavior the golden design exhibits under it. The repair
 * engine simulates every candidate under each installed bench and
 * folds the per-bench scores into one fitness (see combineFitness), so
 * a candidate is plausible only when it matches the main oracle AND
 * every witness bench. Because the expected trace is recorded from the
 * golden design under this exact bench, the correct design passes by
 * construction — a witness can only ever kill wrong behavior.
 */
struct OracleBench
{
    std::string module;      //!< testbench top module name
    std::string source;      //!< testbench Verilog (TB modules only)
    std::string provenance;  //!< where the bench came from (diagnostics)
    sim::ProbeConfig probe;  //!< what to sample under this bench
    Trace oracle;            //!< golden behavior under this bench
};

/**
 * Fold two per-bench fitness results into one: raw sums, totals and
 * bit counts add, and the normalized fitness is recomputed over the
 * combined total. plausible() of the combination therefore requires
 * every contributing bench to be individually perfect — any mismatch
 * anywhere keeps the combined sum strictly below the combined total.
 */
FitnessResult combineFitness(const FitnessResult &a,
                             const FitnessResult &b);

/**
 * Keep only the oracle rows on which @p sim agrees with the oracle
 * exactly (same timestamp, identical values for every oracle column).
 * This deliberately weakens the oracle until the simulated design —
 * typically the unrepaired faulty one — scores a perfect fitness
 * against it: the seeded "plausible but overfit" starting point the
 * witness tests and benches harden away from. Rows whose timestamp
 * @p sim never reached are dropped too.
 */
Trace agreementRows(const Trace &oracle, const Trace &sim);

} // namespace cirfix::core
