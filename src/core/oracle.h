#pragma once

/**
 * @file
 * Expected-behavior oracles (paper Sections 4.1.2 and 5.4).
 *
 * The oracle is a trace of expected output values, normally recorded
 * by simulating a previously-functioning version of the design with
 * the instrumented testbench. RQ4 studies how repair quality degrades
 * as the oracle is thinned: thinOracle() keeps only a fraction of the
 * annotation rows (evenly spaced), modeling a developer who annotates
 * expected values only at certain time intervals.
 */

#include "sim/trace.h"

namespace cirfix::core {

using sim::Trace;

/**
 * Keep roughly @p fraction of the oracle rows, evenly spaced.
 * fraction >= 1 returns the oracle unchanged; the first and last rows
 * are always retained so the observation window is preserved.
 */
Trace thinOracle(const Trace &oracle, double fraction);

} // namespace cirfix::core
