#include "core/mutation.h"

#include <algorithm>

namespace cirfix::core {

using namespace verilog;

namespace {

/** Filter slots to those implicated by fault localization. */
std::vector<StmtSlotInfo>
implicatedSlots(const std::vector<StmtSlotInfo> &slots,
                const std::unordered_set<int> &fl_set)
{
    std::vector<StmtSlotInfo> out;
    for (auto &s : slots)
        if (fl_set.count(s.id))
            out.push_back(s);
    return out;
}

} // namespace

std::optional<Edit>
Mutator::mutate(const SourceFile &ast, const Module &dut,
                const std::unordered_set<int> &fl_set)
{
    FixLocSpace space = computeFixLoc(ast, dut, config_.useFixLoc);
    if (space.slots.empty())
        return std::nullopt;

    std::vector<StmtSlotInfo> targets =
        implicatedSlots(space.slots, fl_set);
    if (targets.empty())
        targets = space.slots;  // fall back to the whole module

    double p = chance();
    double del = config_.deleteThreshold;
    double ins = del + config_.insertThreshold;

    if (p <= del) {
        // Delete: any implicated statement.
        return Edit{[&] {
            Edit e;
            e.kind = EditKind::Delete;
            e.target = pick(targets).id;
            return e;
        }()};
    }

    if (space.donorIds.empty())
        return std::nullopt;

    auto donorStmt = [&](NodeKind target_kind,
                         bool require_compat) -> const Stmt * {
        // Rejection-sample a compatible donor (bounded attempts).
        for (int attempt = 0; attempt < 16; ++attempt) {
            int id = pick(space.donorIds);
            Node *n = findNode(const_cast<SourceFile &>(ast), id);
            if (!n)
                continue;
            if (require_compat &&
                !replacementCompatible(target_kind, n->kind))
                continue;
            return static_cast<const Stmt *>(n);
        }
        return nullptr;
    };

    if (p <= ins) {
        // Insert: donor goes after a statement inside a begin/end
        // block (fix localization: only initial/always blocks, which
        // is all collectStmtSlots visits).
        std::vector<StmtSlotInfo> anchors;
        for (auto &s : targets)
            if (s.inBlock)
                anchors.push_back(s);
        if (anchors.empty())
            for (auto &s : space.slots)
                if (s.inBlock)
                    anchors.push_back(s);
        if (anchors.empty())
            return std::nullopt;
        const Stmt *donor = donorStmt(NodeKind::NullStmt, false);
        if (!donor)
            return std::nullopt;
        Edit e;
        e.kind = EditKind::InsertAfter;
        e.target = pick(anchors).id;
        e.code = donor->cloneStmt();
        return e;
    }

    // Replace.
    const StmtSlotInfo &target = pick(targets);
    const Stmt *donor = donorStmt(target.kind, config_.useFixLoc);
    if (!donor || donor->id == target.id)
        return std::nullopt;
    Edit e;
    e.kind = EditKind::Replace;
    e.target = target.id;
    e.code = donor->cloneStmt();
    return e;
}

std::optional<Edit>
Mutator::templateEdit(const SourceFile &ast, const Module &dut,
                      const std::unordered_set<int> &fl_set)
{
    (void)ast;
    std::vector<TemplateSite> sites = enumerateTemplateSites(
        dut, fl_set.empty() ? nullptr : &fl_set,
        config_.extendedTemplates);
    if (sites.empty())
        sites = enumerateTemplateSites(dut, nullptr,
                                       config_.extendedTemplates);
    if (sites.empty())
        return std::nullopt;
    const TemplateSite &site = pick(sites);
    Edit e;
    e.kind = EditKind::Template;
    e.tmpl = site.kind;
    e.target = site.target;
    e.param = site.param;
    return e;
}

std::pair<Patch, Patch>
crossover(const Patch &a, const Patch &b, std::mt19937_64 &rng)
{
    size_t i = a.edits.empty() ? 0 : rng() % (a.edits.size() + 1);
    size_t j = b.edits.empty() ? 0 : rng() % (b.edits.size() + 1);
    Patch c1, c2;
    c1.edits.assign(a.edits.begin(),
                    a.edits.begin() + static_cast<long>(i));
    c1.edits.insert(c1.edits.end(), b.edits.begin() + static_cast<long>(j),
                    b.edits.end());
    c2.edits.assign(b.edits.begin(),
                    b.edits.begin() + static_cast<long>(j));
    c2.edits.insert(c2.edits.end(), a.edits.begin() + static_cast<long>(i),
                    a.edits.end());
    return {std::move(c1), std::move(c2)};
}

} // namespace cirfix::core
