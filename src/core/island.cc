#include "core/island.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/snapshot.h"

namespace cirfix::core {

uint64_t
deriveIslandSeed(uint64_t seed, int island)
{
    if (island <= 0)
        return seed;  // island 0 draws the plain run's exact stream
    // splitmix64 of (seed, island): well-distributed, stable across
    // platforms, and never the identity for island > 0.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                            static_cast<uint64_t>(island);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

EngineConfig
deriveIslandEngineConfig(const EngineConfig &base, const IslandConfig &ic,
                         int island)
{
    EngineConfig cfg = base;
    cfg.seed = deriveIslandSeed(base.seed, island);
    cfg.islandIndex = island;
    cfg.islandCount = ic.islands;
    // A 1-island run carries island provenance but never migrates:
    // it must equal a plain run bit for bit.
    cfg.migrationInterval = ic.islands > 1 ? ic.migrationInterval : 0;
    cfg.onMigration = nullptr;
    cfg.fleetLookup = nullptr;
    cfg.fleetPublish = nullptr;
    return cfg;
}

namespace {

/** Strict total order for elite/migrant ranking: fitness descending,
 *  patch key ascending. Schedule-independent by construction. */
bool
rankLess(const std::pair<std::string, const Variant *> &a,
         const std::pair<std::string, const Variant *> &b)
{
    if (a.second->fit.fitness != b.second->fit.fitness)
        return a.second->fit.fitness > b.second->fit.fitness;
    return a.first < b.first;
}

std::string
hexDouble(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", d);
    return buf;
}

} // namespace

std::vector<Variant>
selectElites(const std::vector<Variant> &popn, int n)
{
    std::vector<std::pair<std::string, const Variant *>> ranked;
    ranked.reserve(popn.size());
    for (const Variant &v : popn)
        if (v.evaluated && v.valid)
            ranked.emplace_back(v.patch.key(), &v);
    std::sort(ranked.begin(), ranked.end(), rankLess);
    std::vector<Variant> out;
    for (const auto &[key, v] : ranked) {
        if (static_cast<int>(out.size()) >= n)
            break;
        out.push_back(*v);
    }
    return out;
}

std::vector<Variant>
selectMigrants(
    const std::vector<std::vector<Variant>> &exports,
    const std::function<bool(const std::string &)> &isQuarantined,
    MigrationStats *stats)
{
    std::vector<std::pair<std::string, const Variant *>> ranked;
    for (const auto &ex : exports) {
        if (stats)
            stats->elitesExported += static_cast<long>(ex.size());
        for (const Variant &v : ex)
            ranked.emplace_back(v.patch.key(), &v);
    }
    std::sort(ranked.begin(), ranked.end(), rankLess);
    std::vector<Variant> out;
    std::vector<std::string> seen;
    for (const auto &[key, v] : ranked) {
        if (std::find(seen.begin(), seen.end(), key) != seen.end())
            continue;  // same patch exported by several islands
        seen.push_back(key);
        if (isQuarantined && isQuarantined(key))
            continue;  // condemned keys never migrate
        out.push_back(*v);
    }
    if (stats) {
        stats->migrantsBroadcast += static_cast<long>(out.size());
        // Invariant check, not dedup: the loop above must already have
        // made the broadcast duplicate-free.
        std::vector<std::string> keys;
        for (const Variant &v : out)
            keys.push_back(v.patch.key());
        std::sort(keys.begin(), keys.end());
        stats->migrantDuplicates += static_cast<long>(
            keys.size() -
            static_cast<size_t>(std::distance(
                keys.begin(),
                std::unique(keys.begin(), keys.end()))));
    }
    return out;
}

std::vector<std::string>
injectMigrants(std::vector<Variant> *popn,
               const std::vector<Variant> &migrants, int popSize)
{
    if (migrants.empty())
        return {};
    std::vector<std::string> local;
    local.reserve(popn->size());
    for (const Variant &v : *popn)
        local.push_back(v.patch.key());
    std::vector<std::string> appended;
    for (const Variant &m : migrants) {
        std::string key = m.patch.key();
        if (std::find(local.begin(), local.end(), key) != local.end())
            continue;  // already bred (or received) here
        local.push_back(key);
        appended.push_back(key);
        popn->push_back(m);
    }
    // Stable: locals precede migrants at equal fitness, migrants keep
    // broadcast rank — the merged order is a pure function of the
    // inputs, never of scores below the truncation cutoff.
    std::stable_sort(popn->begin(), popn->end(),
                     [](const Variant &a, const Variant &b) {
                         return a.fit.fitness > b.fit.fitness;
                     });
    if (static_cast<int>(popn->size()) > popSize)
        popn->resize(static_cast<size_t>(popSize));
    std::vector<std::string> survived;
    for (const Variant &v : *popn) {
        std::string key = v.patch.key();
        if (std::find(appended.begin(), appended.end(), key) !=
            appended.end())
            survived.push_back(key);
    }
    return survived;
}

// ------------------------------------------------ SharedFitnessStore

void
SharedFitnessStore::publish(
    const std::vector<std::pair<std::string, FitnessCache::Entry>>
        &scored,
    const std::vector<std::pair<std::string, QuarantineEntry>>
        &condemned)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, entry] : scored)
        cache_.emplace(key, entry);  // first writer wins (exact anyway)
    for (const auto &[key, entry] : condemned)
        quarantine_.emplace(key, entry);
}

void
SharedFitnessStore::lookup(
    const std::vector<std::string> &keys,
    std::unordered_map<std::string, FitnessCache::Entry> *cacheHits,
    std::unordered_map<std::string, QuarantineEntry> *quarantineHits)
    const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string &key : keys) {
        if (auto q = quarantine_.find(key); q != quarantine_.end()) {
            if (quarantineHits)
                quarantineHits->emplace(key, q->second);
            continue;
        }
        if (auto c = cache_.find(key); c != cache_.end())
            if (cacheHits)
                cacheHits->emplace(key, c->second);
    }
}

bool
SharedFitnessStore::isQuarantined(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantine_.count(key) != 0;
}

size_t
SharedFitnessStore::cacheSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

size_t
SharedFitnessStore::quarantineSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return quarantine_.size();
}

// -------------------------------------------------- MigrationLedger

MigrationLedger::MigrationLedger(IslandConfig cfg) : cfg_(cfg) {}

void
MigrationLedger::attachQuarantineFilter(
    std::function<bool(const std::string &)> isQuarantined)
{
    std::lock_guard<std::mutex> lock(mu_);
    isQuarantined_ = std::move(isQuarantined);
}

void
MigrationLedger::submit(int island, int epoch,
                        std::vector<Variant> elites)
{
    std::lock_guard<std::mutex> lock(mu_);
    EpochState &st = epochs_[epoch];
    auto prior = st.submissions.find(island);
    if (prior != st.submissions.end()) {
        // Failover re-export. A deterministic island re-derives the
        // identical elite set; anything else means an elite was lost
        // (or fabricated) across the crash.
        auto keysOf = [](const std::vector<Variant> &vs) {
            std::vector<std::string> ks;
            for (const Variant &v : vs)
                ks.push_back(v.patch.key());
            return ks;
        };
        if (keysOf(prior->second) != keysOf(elites))
            ++stats_.elitesLost;
        return;  // first submission already fed (or will feed) the merge
    }
    st.submissions.emplace(island, std::move(elites));
    sealIfReadyLocked(epoch);
}

void
MigrationLedger::markDone(int island, int finalEpoch, bool found)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (doneAt_.count(island))
        return;
    doneAt_.emplace(island, finalEpoch);
    if (found) {
        // Lexicographic min (epoch, island): sealed epochs make this
        // final (see class comment).
        if (winnerIsland_ == -1 || finalEpoch < winnerEpoch_ ||
            (finalEpoch == winnerEpoch_ && island < winnerIsland_)) {
            winnerIsland_ = island;
            winnerEpoch_ = finalEpoch;
        }
    }
    // A done-mark can complete any pending barrier.
    for (auto &[epoch, st] : epochs_)
        if (!st.sealed)
            sealIfReadyLocked(epoch);
}

void
MigrationLedger::sealIfReadyLocked(int epoch)
{
    EpochState &st = epochs_[epoch];
    if (st.sealed)
        return;
    for (int i = 0; i < cfg_.islands; ++i)
        if (!st.submissions.count(i) && !doneAt_.count(i))
            return;
    std::vector<std::vector<Variant>> exports;
    for (int i = 0; i < cfg_.islands; ++i) {
        auto it = st.submissions.find(i);
        if (it != st.submissions.end())
            exports.push_back(it->second);
    }
    st.migrants = selectMigrants(exports, isQuarantined_, &stats_);
    st.migrantKeys.clear();
    for (const Variant &v : st.migrants)
        st.migrantKeys.push_back(v.patch.key());
    st.sealed = true;
}

MigrationLedger::Exchange
MigrationLedger::poll(int island, int epoch)
{
    (void)island;
    std::lock_guard<std::mutex> lock(mu_);
    Exchange ex;
    auto it = epochs_.find(epoch);
    if (it == epochs_.end() || !it->second.sealed)
        return ex;
    ex.ready = true;
    ex.stop = winnerIsland_ != -1 && winnerEpoch_ <= epoch;
    ex.migrants = it->second.migrants;
    return ex;
}

void
MigrationLedger::verifyReplay(int island,
                              const std::vector<MigrantRecord> &ledger)
{
    (void)island;
    std::lock_guard<std::mutex> lock(mu_);
    for (const MigrantRecord &rec : ledger) {
        auto it = epochs_.find(rec.epoch);
        if (it == epochs_.end() || !it->second.sealed) {
            // The island injected migrants from an epoch this ledger
            // never sealed: its history cannot be ours.
            stats_.elitesLost += static_cast<long>(rec.keys.size());
            continue;
        }
        for (const std::string &key : rec.keys)
            if (std::find(it->second.migrantKeys.begin(),
                          it->second.migrantKeys.end(),
                          key) == it->second.migrantKeys.end())
                ++stats_.elitesLost;
    }
}

bool
MigrationLedger::allDone()
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(doneAt_.size()) >= cfg_.islands;
}

std::pair<int, int>
MigrationLedger::winner()
{
    std::lock_guard<std::mutex> lock(mu_);
    return {winnerIsland_, winnerEpoch_};
}

MigrationStats
MigrationLedger::stats()
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<std::pair<int, std::vector<std::string>>>
MigrationLedger::broadcasts()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<int, std::vector<std::string>>> out;
    for (const auto &[epoch, st] : epochs_)
        if (st.sealed)
            out.emplace_back(epoch, st.migrantKeys);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

std::string
MigrationLedger::encode()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    auto blob = [&os](const std::string &tag, const std::string &data) {
        os << tag << ' ' << data.size() << '\n' << data << '\n';
    };
    os << "CIRFIX-ISLAND-LEDGER 1\n";
    os << "config " << cfg_.islands << ' ' << cfg_.migrationInterval
       << ' ' << cfg_.migrantsPerIsland << '\n';
    os << "stats " << stats_.elitesExported << ' '
       << stats_.migrantsBroadcast << ' ' << stats_.migrantDuplicates
       << ' ' << stats_.elitesLost << '\n';
    std::vector<std::pair<int, int>> done(doneAt_.begin(),
                                          doneAt_.end());
    std::sort(done.begin(), done.end());
    os << "done " << done.size() << '\n';
    for (auto [island, epoch] : done)
        os << "d " << island << ' ' << epoch << '\n';
    os << "winner " << winnerIsland_ << ' ' << winnerEpoch_ << '\n';
    std::vector<int> sealed;
    for (const auto &[epoch, st] : epochs_)
        if (st.sealed)
            sealed.push_back(epoch);
    std::sort(sealed.begin(), sealed.end());
    os << "epochs " << sealed.size() << '\n';
    for (int epoch : sealed) {
        const EpochState &st = epochs_.at(epoch);
        std::vector<int> islands;
        for (const auto &[i, vs] : st.submissions)
            islands.push_back(i);
        std::sort(islands.begin(), islands.end());
        os << "epoch " << epoch << ' ' << islands.size() << '\n';
        for (int i : islands)
            blob("sub " + std::to_string(i),
                 encodeVariants(st.submissions.at(i)));
        blob("migrants", encodeVariants(st.migrants));
    }
    std::string body = os.str();
    os << "checksum " << fingerprintSource(body) << '\n';
    return os.str();
}

bool
MigrationLedger::decode(const std::string &text)
{
    try {
        std::istringstream is(text);
        auto expectLine = [&is](const std::string &tag) {
            std::string got;
            if (!(is >> got) || got != tag)
                throw std::runtime_error("expected '" + tag + "'");
        };
        auto readBlob = [&is](const std::string &tag) {
            std::string head;
            // Tags may contain one space ("sub <i>"); read word-wise.
            std::istringstream tags(tag);
            std::string word;
            while (tags >> word) {
                std::string got;
                if (!(is >> got) || got != word)
                    throw std::runtime_error("expected '" + tag + "'");
            }
            size_t n = 0;
            if (!(is >> n))
                throw std::runtime_error("bad blob size");
            is.get();  // newline
            std::string data(n, '\0');
            is.read(data.data(), static_cast<std::streamsize>(n));
            if (is.gcount() != static_cast<std::streamsize>(n))
                throw std::runtime_error("blob truncated");
            is.get();  // trailing newline
            return data;
        };
        // Verify the seal before trusting anything inside.
        {
            const std::string tag = "checksum ";
            size_t cks = text.rfind("\nchecksum ");
            if (cks == std::string::npos)
                throw std::runtime_error("missing checksum");
            uint64_t want = std::stoull(
                text.substr(cks + 1 + tag.size()));
            if (fingerprintSource(text.substr(0, cks + 1)) != want)
                throw std::runtime_error("checksum mismatch");
        }
        expectLine("CIRFIX-ISLAND-LEDGER");
        int v = 0;
        if (!(is >> v) || v != 1)
            throw std::runtime_error("unsupported ledger version");
        IslandConfig cfg;
        expectLine("config");
        if (!(is >> cfg.islands >> cfg.migrationInterval >>
              cfg.migrantsPerIsland))
            throw std::runtime_error("bad config");
        MigrationStats stats;
        expectLine("stats");
        if (!(is >> stats.elitesExported >> stats.migrantsBroadcast >>
              stats.migrantDuplicates >> stats.elitesLost))
            throw std::runtime_error("bad stats");
        expectLine("done");
        size_t ndone = 0;
        is >> ndone;
        std::unordered_map<int, int> doneAt;
        for (size_t i = 0; i < ndone; ++i) {
            expectLine("d");
            int island = 0, epoch = 0;
            if (!(is >> island >> epoch))
                throw std::runtime_error("bad done record");
            doneAt.emplace(island, epoch);
        }
        expectLine("winner");
        int wIsland = -1, wEpoch = 0;
        if (!(is >> wIsland >> wEpoch))
            throw std::runtime_error("bad winner record");
        expectLine("epochs");
        size_t nepochs = 0;
        is >> nepochs;
        is.get();
        std::unordered_map<int, EpochState> epochs;
        for (size_t e = 0; e < nepochs; ++e) {
            expectLine("epoch");
            int epoch = 0;
            size_t nsub = 0;
            if (!(is >> epoch >> nsub))
                throw std::runtime_error("bad epoch record");
            is.get();
            EpochState st;
            for (size_t s = 0; s < nsub; ++s) {
                // Peek the island index out of the "sub <i>" tag.
                std::string word;
                if (!(is >> word) || word != "sub")
                    throw std::runtime_error("expected 'sub'");
                int island = 0;
                size_t n = 0;
                if (!(is >> island >> n))
                    throw std::runtime_error("bad sub record");
                is.get();
                std::string data(n, '\0');
                is.read(data.data(),
                        static_cast<std::streamsize>(n));
                if (is.gcount() != static_cast<std::streamsize>(n))
                    throw std::runtime_error("sub blob truncated");
                is.get();
                st.submissions.emplace(island, decodeVariants(data));
            }
            st.migrants = decodeVariants(readBlob("migrants"));
            for (const Variant &mv : st.migrants)
                st.migrantKeys.push_back(mv.patch.key());
            st.sealed = true;
            epochs.emplace(epoch, std::move(st));
        }
        std::lock_guard<std::mutex> lock(mu_);
        cfg_ = cfg;
        stats_ = stats;
        doneAt_ = std::move(doneAt);
        winnerIsland_ = wIsland;
        winnerEpoch_ = wEpoch;
        epochs_ = std::move(epochs);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

// ----------------------------------------------------- fingerprint

uint64_t
islandFingerprint(const IslandFingerprintInput &in)
{
    std::ostringstream os;
    os << "island-fingerprint v1\n";
    os << "seed " << in.seed << '\n';
    os << "config " << in.config.islands << ' '
       << in.config.migrationInterval << ' '
       << in.config.migrantsPerIsland << '\n';
    os << "winner " << in.winnerIsland << ' ' << in.winnerEpoch << '\n';
    for (const IslandStats &st : in.islands) {
        os << "island " << st.island << ' ' << st.generations << ' '
           << (st.found ? 1 : 0) << ' ' << (st.stopped ? 1 : 0) << ' '
           << hexDouble(st.bestFitness) << '\n';
        os << "patch " << st.patchKey.size() << '\n'
           << st.patchKey << '\n';
        for (const MigrantRecord &rec : st.ledger) {
            os << "injected " << rec.epoch << ' ' << rec.keys.size()
               << '\n';
            for (const std::string &key : rec.keys)
                os << "key " << key.size() << '\n' << key << '\n';
        }
    }
    for (const auto &[epoch, keys] : in.broadcasts) {
        os << "broadcast " << epoch << ' ' << keys.size() << '\n';
        for (const std::string &key : keys)
            os << "key " << key.size() << '\n' << key << '\n';
    }
    return fingerprintSource(os.str());
}

IslandFingerprintInput
fingerprintInput(const IslandOutcome &outcome, uint64_t seed,
                 const IslandConfig &cfg)
{
    IslandFingerprintInput in;
    in.seed = seed;
    in.config = cfg;
    in.winnerIsland = outcome.winnerIsland;
    in.winnerEpoch = outcome.winnerEpoch;
    in.islands = outcome.islands;
    in.broadcasts = outcome.broadcasts;
    return in;
}

// ------------------------------------------------------- runIslands

namespace {

IslandStats
digestFromResult(int island, const RepairResult &res)
{
    IslandStats st;
    st.island = island;
    st.generations = res.generations;
    st.found = res.found;
    st.stopped = res.stopped;
    st.bestFitness = res.fitnessTrajectory.empty()
                         ? 0.0
                         : res.fitnessTrajectory.back().second;
    if (res.found)
        st.patchKey = res.patch.key();
    st.ledger = res.migrantLedger;
    st.fitnessEvals = res.fitnessEvals;
    st.fleetCacheHits = res.fleetCacheHits;
    st.fleetQuarantineHits = res.fleetQuarantineHits;
    return st;
}

int
epochOf(int generations, int interval)
{
    return interval > 0 ? (generations + interval - 1) / interval : 0;
}

} // namespace

IslandOutcome
runIslands(std::shared_ptr<const verilog::SourceFile> faulty,
           const std::string &tbModule, const std::string &dutModule,
           const sim::ProbeConfig &probe, const Trace &oracle,
           const EngineConfig &base, const IslandConfig &cfg,
           const std::string &snapshotDir,
           const std::function<void(const GenerationStats &)>
               &onGeneration,
           const std::function<bool()> &shouldStop)
{
    namespace fs = std::filesystem;
    const int K = std::max(1, cfg.islands);

    auto ledgerPath = [&] {
        return snapshotDir.empty() ? std::string()
                                   : snapshotDir + "/islands.ledger";
    }();
    auto islandSnap = [&](int i) {
        return snapshotDir.empty()
                   ? std::string()
                   : snapshotDir + "/island-" + std::to_string(i) +
                         ".snap";
    };

    MigrationLedger ledger(cfg);
    SharedFitnessStore store;
    ledger.attachQuarantineFilter([&store](const std::string &key) {
        return store.isQuarantined(key);
    });

    // Crash recovery: island snapshots are only trustworthy together
    // with the ledger that fed them their migrants. A missing or
    // corrupt ledger restarts the whole job from scratch (the rerun is
    // deterministic, so the final result is unchanged — only work is
    // lost).
    if (!snapshotDir.empty() && K > 1) {
        bool haveSnaps = false;
        for (int i = 0; i < K; ++i)
            if (fs::exists(islandSnap(i)))
                haveSnaps = true;
        bool ledgerOk = false;
        if (fs::exists(ledgerPath)) {
            std::ifstream in(ledgerPath, std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            ledgerOk = ledger.decode(buf.str());
        }
        if (haveSnaps && !ledgerOk) {
            for (int i = 0; i < K; ++i)
                fs::remove(islandSnap(i));
            if (fs::exists(ledgerPath))
                fs::remove(ledgerPath);
        }
    }

    std::mutex persistMu;
    auto persistLedger = [&] {
        if (ledgerPath.empty())
            return;
        std::lock_guard<std::mutex> lock(persistMu);
        std::string data = ledger.encode();
        std::string tmp = ledgerPath + ".tmp";
        {
            std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
            os.write(data.data(),
                     static_cast<std::streamsize>(data.size()));
        }
        std::rename(tmp.c_str(), ledgerPath.c_str());
    };

    std::mutex barrierMu;
    std::condition_variable barrierCv;
    std::vector<char> stopFlags(static_cast<size_t>(K), 0);
    std::mutex genMu;

    std::vector<RepairResult> results(static_cast<size_t>(K));
    std::vector<std::string> failures(static_cast<size_t>(K));

    auto runOne = [&](int island) {
        EngineConfig ec = deriveIslandEngineConfig(base, cfg, island);
        ec.snapshotPath = islandSnap(island);
        ec.snapshotEvery = ec.snapshotPath.empty() ? 0 : 1;
        if (K > 1) {
            ec.onMigration = [&, island](int epoch,
                                         const std::vector<Variant>
                                             &popn) {
                std::vector<Variant> elites =
                    selectElites(popn, cfg.migrantsPerIsland);
                ledger.submit(island, epoch, std::move(elites));
                barrierCv.notify_all();
                // Bounded waits instead of a pure condvar predicate:
                // the ledger has its own lock, so a notify could slip
                // between poll and block — the timeout bounds that
                // window, and external cancels stay responsive.
                MigrationLedger::Exchange ex;
                {
                    std::unique_lock<std::mutex> lock(barrierMu);
                    for (;;) {
                        ex = ledger.poll(island, epoch);
                        if (ex.ready)
                            break;
                        if ((shouldStop && shouldStop()) ||
                            (base.shouldStop && base.shouldStop()))
                            break;
                        barrierCv.wait_for(
                            lock, std::chrono::milliseconds(20));
                    }
                }
                persistLedger();
                if (!ex.ready || ex.stop) {
                    stopFlags[static_cast<size_t>(island)] = 1;
                    return std::vector<Variant>{};
                }
                return ex.migrants;
            };
            ec.fleetLookup =
                [&store](const std::vector<std::string> &keys,
                         std::unordered_map<std::string,
                                            FitnessCache::Entry> *hits,
                         std::unordered_map<std::string,
                                            QuarantineEntry> *quar) {
                    store.lookup(keys, hits, quar);
                };
            ec.fleetPublish =
                [&store](
                    const std::vector<std::pair<
                        std::string, FitnessCache::Entry>> &scored,
                    const std::vector<std::pair<
                        std::string, QuarantineEntry>> &condemned) {
                    store.publish(scored, condemned);
                };
        }
        ec.shouldStop = [&, island] {
            if (stopFlags[static_cast<size_t>(island)])
                return true;
            if (shouldStop && shouldStop())
                return true;
            if (base.shouldStop && base.shouldStop())
                return true;
            return false;
        };
        if (onGeneration)
            ec.onGeneration = [&](const GenerationStats &gs) {
                std::lock_guard<std::mutex> lock(genMu);
                onGeneration(gs);
            };
        else
            ec.onGeneration = nullptr;

        try {
            RepairEngine engine(faulty, tbModule, dutModule, probe,
                                oracle, ec);
            RepairResult res;
            if (!ec.snapshotPath.empty() &&
                fs::exists(ec.snapshotPath)) {
                EngineState state = loadSnapshot(ec.snapshotPath);
                ledger.verifyReplay(island, state.migrantLedger);
                res = engine.resume(state);
            } else {
                res = engine.run();
            }
            results[static_cast<size_t>(island)] = std::move(res);
        } catch (const std::exception &e) {
            failures[static_cast<size_t>(island)] = e.what();
        }
        const RepairResult &res = results[static_cast<size_t>(island)];
        // Wind-down (external stop, no winner): do NOT mark the island
        // done — a persisted done-mark would make a resumed run seal
        // later epochs with partial submissions and diverge from the
        // uninterrupted one. The island stays resumable, exactly like a
        // fleet worker that abandons its shard without a done frame.
        // (Every other island sees the same shouldStop, so no barrier
        // waits on the skipped mark.)
        bool windDown = res.stopped && !res.found &&
                        ((shouldStop && shouldStop()) ||
                         (base.shouldStop && base.shouldStop()));
        if (!windDown) {
            ledger.markDone(island,
                            epochOf(res.generations,
                                    K > 1 ? cfg.migrationInterval : 0),
                            res.found);
            persistLedger();
        }
        barrierCv.notify_all();
    };

    if (K == 1) {
        runOne(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(K));
        for (int i = 0; i < K; ++i)
            threads.emplace_back(runOne, i);
        for (auto &t : threads)
            t.join();
    }

    for (int i = 0; i < K; ++i)
        if (!failures[static_cast<size_t>(i)].empty())
            throw std::runtime_error(
                "island " + std::to_string(i) +
                " failed: " + failures[static_cast<size_t>(i)]);

    IslandOutcome out;
    auto [wIsland, wEpoch] = ledger.winner();
    out.winnerIsland = wIsland;
    out.winnerEpoch = wEpoch;
    out.found = wIsland != -1;
    for (int i = 0; i < K; ++i)
        out.islands.push_back(
            digestFromResult(i, results[static_cast<size_t>(i)]));
    out.broadcasts = ledger.broadcasts();
    out.migration = ledger.stats();
    if (out.found) {
        out.result = std::move(results[static_cast<size_t>(wIsland)]);
    } else {
        // Best-effort digest when nothing repaired: highest best-seen
        // fitness, lowest island index on ties.
        int best = 0;
        for (int i = 1; i < K; ++i)
            if (out.islands[static_cast<size_t>(i)].bestFitness >
                out.islands[static_cast<size_t>(best)].bestFitness)
                best = i;
        out.winnerIsland = -1;
        out.result = std::move(results[static_cast<size_t>(best)]);
    }
    out.fingerprint =
        islandFingerprint(fingerprintInput(out, base.seed, cfg));
    return out;
}

} // namespace cirfix::core
