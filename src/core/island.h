#pragma once

/**
 * @file
 * Island-model evolution: K subpopulations of the same repair search,
 * each a full RepairEngine with its own derived seed, exchanging elite
 * patches at fixed generation boundaries ("migration epochs").
 *
 * Determinism contract. A K-island run is a pure function of
 * (seed, K, migrationInterval, migrantsPerIsland): each island's RNG
 * stream is derived from the job seed and its index, elites are
 * exported at every epoch boundary (after the generation's elitism
 * truncation, before its snapshot), and the broadcast migrant set is a
 * deterministic merge — fitness descending, patch key ascending,
 * deduplicated, minus fleet-quarantined keys. Timing, thread
 * scheduling, crashes and failover can change only *work* counters
 * (evaluations, cache hits, early aborts); the populations, the
 * migrant ledger, the winner and the final patch are bit-identical
 * per configuration. islandFingerprint() hashes exactly the invariant
 * part, so two runs — in-process threads vs a distributed fleet, with
 * or without a SIGKILLed worker mid-epoch — can be compared with one
 * integer.
 *
 * The soundness of cross-island fitness sharing (why a fleet cache hit
 * cannot change the search) is argued in DESIGN.md "Island-model
 * evolution": local caches never store early-aborted scores, so every
 * shared entry is exact, and an exact score substituted for a
 * would-have-aborted simulation still falls below the survival cutoff
 * that would have aborted it.
 *
 * MigrationLedger is the coordinator's half of the barrier protocol
 * and is deliberately transport-free: the in-process runIslands() and
 * the fleet coordinator (service/fleet.h) drive the same class, which
 * is what makes "cirfix repair --islands 4" and a 4-worker fleet run
 * produce the same fingerprint.
 */

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace cirfix::core {

/** Knobs of a K-island run (all part of the fingerprint). */
struct IslandConfig
{
    int islands = 1;
    /** Generations per migration epoch. */
    int migrationInterval = 2;
    /** Elites each island exports at every epoch boundary. */
    int migrantsPerIsland = 2;
};

/** Migration-machinery totals. The first two are volume counters; the
 *  last two are *hard invariants* (island_bench gates them at zero):
 *  a nonzero migrantDuplicates means the dedup merge emitted the same
 *  key twice in one broadcast, a nonzero elitesLost means a failover
 *  replay disagreed with the coordinator's ledger. */
struct MigrationStats
{
    long elitesExported = 0;    //!< elites received across all epochs
    long migrantsBroadcast = 0; //!< broadcast-set entries, summed
    long migrantDuplicates = 0; //!< duplicate keys inside one broadcast
    long elitesLost = 0;        //!< replay/re-export mismatches
};

/** Per-island digest of a finished (or stopped) island run. Fields up
 *  to @c ledger are fingerprinted; the trailing counters are volatile
 *  work accounting (excluded — see the determinism contract above). */
struct IslandStats
{
    int island = 0;
    int generations = 0;
    bool found = false;
    bool stopped = false;
    /** Best fitness ever seen, read at the end of the run (converged:
     *  per-generation it is timing-invariant once the generation's
     *  whole merge pool has been absorbed). */
    double bestFitness = 0.0;
    /** Minimized winning patch key ("" unless found). */
    std::string patchKey;
    /** Per-epoch keys of migrants actually injected. */
    std::vector<MigrantRecord> ledger;
    // ---- volatile work counters (not fingerprinted) ----
    long fitnessEvals = 0;
    long fleetCacheHits = 0;
    long fleetQuarantineHits = 0;
};

/** The whole K-island run: the winning island's full result plus the
 *  per-island digests and migration accounting. */
struct IslandOutcome
{
    bool found = false;
    int winnerIsland = -1;
    /** Epoch the winner's discovery generation belongs to
     *  (ceil(generations / migrationInterval)). */
    int winnerEpoch = 0;
    /** The winning island's result (best non-winner by bestFitness,
     *  lowest index tiebreak, when nothing was found). */
    RepairResult result;
    std::vector<IslandStats> islands;
    /** Broadcast migrant keys per sealed epoch, ascending epoch. */
    std::vector<std::pair<int, std::vector<std::string>>> broadcasts;
    MigrationStats migration;
    uint64_t fingerprint = 0;
};

/** Island i's RNG seed. Identity at island 0, so a 1-island run draws
 *  the exact stream a plain run would. */
uint64_t deriveIslandSeed(uint64_t seed, int island);

/** Derive island @p island's engine config from the job's base config:
 *  derived seed, island provenance, migration interval. Hooks
 *  (onMigration, fleetLookup/fleetPublish, shouldStop) stay unset —
 *  the caller attaches its transport. At islands == 1 no migration
 *  hook should be attached at all: the run must equal a plain run. */
EngineConfig deriveIslandEngineConfig(const EngineConfig &base,
                                      const IslandConfig &ic,
                                      int island);

/** Top-@p n *valid* variants by (fitness desc, key asc) — a strict
 *  total order, so exports are schedule-independent. */
std::vector<Variant> selectElites(const std::vector<Variant> &popn,
                                  int n);

/**
 * Merge per-island epoch exports into the broadcast migrant set:
 * concatenate, order by (fitness desc, key asc), drop duplicate keys
 * and keys @p isQuarantined condemns. Every island receives this same
 * set; injectMigrants() deduplicates against the local population, so
 * an island never re-imports its own exports. @p stats accumulates
 * volume counters and the duplicate invariant.
 */
std::vector<Variant> selectMigrants(
    const std::vector<std::vector<Variant>> &exports,
    const std::function<bool(const std::string &)> &isQuarantined,
    MigrationStats *stats);

/**
 * Inject @p migrants into @p popn at a generation boundary: append
 * every migrant whose key is not already present, stable-sort by
 * fitness descending (stable: local members and broadcast rank break
 * ties deterministically), truncate to @p popSize. @return the keys
 * of migrants that survived into the population, in population order.
 */
std::vector<std::string> injectMigrants(std::vector<Variant> *popn,
                                        const std::vector<Variant>
                                            &migrants,
                                        int popSize);

/** Thread-safe fleet-shared fitness/quarantine store, keyed by
 *  Patch::key. One instance per job: the in-process islands share it
 *  directly; the coordinator exposes it over cache_sync messages. */
class SharedFitnessStore
{
  public:
    void publish(
        const std::vector<std::pair<std::string, FitnessCache::Entry>>
            &scored,
        const std::vector<std::pair<std::string, QuarantineEntry>>
            &condemned);

    /** Fill @p cacheHits / @p quarantineHits for every known key. */
    void lookup(const std::vector<std::string> &keys,
                std::unordered_map<std::string, FitnessCache::Entry>
                    *cacheHits,
                std::unordered_map<std::string, QuarantineEntry>
                    *quarantineHits) const;

    bool isQuarantined(const std::string &key) const;
    size_t cacheSize() const;
    size_t quarantineSize() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, FitnessCache::Entry> cache_;
    std::unordered_map<std::string, QuarantineEntry> quarantine_;
};

/**
 * The epoch barrier, transport-free. Islands submit() their elites at
 * each boundary and poll() until the epoch *seals* — every island has
 * either submitted that epoch or marked itself done. Sealing epoch e
 * fixes the winner decision for every epoch <= e (an island whose
 * discovery lies in epoch w never submits w, so its done-mark is part
 * of seal(e) for all e >= w), which is why stop decisions handed out
 * at barriers are timing-independent. All methods are internally
 * locked; poll() never blocks (callers wait on their own condition or
 * re-poll over the wire).
 */
class MigrationLedger
{
  public:
    explicit MigrationLedger(IslandConfig cfg);

    /** Island @p island offers @p elites at epoch @p epoch. Idempotent
     *  per (island, epoch): a failover re-export with identical keys
     *  is ignored, a mismatching one counts elitesLost (the first
     *  submission already fed the broadcast). */
    void submit(int island, int epoch, std::vector<Variant> elites);

    /** Island will make no further submissions. @p found marks a
     *  winner whose discovery generation lies in epoch @p finalEpoch;
     *  the winner among several is the lexicographically smallest
     *  (epoch, island). Idempotent. */
    void markDone(int island, int finalEpoch, bool found);

    struct Exchange
    {
        bool ready = false; //!< epoch sealed; fields below valid
        bool stop = false;  //!< a winner at epoch <= this one exists
        std::vector<Variant> migrants;
    };

    /** Barrier status for @p island at @p epoch (non-blocking). */
    Exchange poll(int island, int epoch);

    /** Failover replay check: every ledger entry a resumed island
     *  carries must be a subset of the epoch's broadcast; a violation
     *  counts elitesLost. */
    void verifyReplay(int island,
                      const std::vector<MigrantRecord> &ledger);

    bool allDone();
    /** (-1, 0) while no winner is sealed. */
    std::pair<int, int> winner();
    MigrationStats stats();
    /** Sealed broadcasts, ascending epoch. */
    std::vector<std::pair<int, std::vector<std::string>>> broadcasts();

    /** Serialized ledger state for coordinator crash-recovery. */
    std::string encode();
    /** @return false (leaving *this untouched) on a parse failure —
     *  the caller restarts the job from scratch. */
    bool decode(const std::string &text);

    /** Quarantine filter for selectMigrants (may be null). */
    void attachQuarantineFilter(
        std::function<bool(const std::string &)> isQuarantined);

  private:
    struct EpochState
    {
        std::unordered_map<int, std::vector<Variant>> submissions;
        bool sealed = false;
        std::vector<Variant> migrants;
        std::vector<std::string> migrantKeys;
    };

    void sealIfReadyLocked(int epoch);

    std::mutex mu_;
    IslandConfig cfg_;
    std::function<bool(const std::string &)> isQuarantined_;
    std::unordered_map<int, EpochState> epochs_;
    std::unordered_map<int, int> doneAt_;  //!< island -> final epoch
    int winnerIsland_ = -1;
    int winnerEpoch_ = 0;
    MigrationStats stats_;
};

/** Canonical fingerprint of a K-island run: configuration, per-island
 *  digests (invariant fields only), the winner and every sealed
 *  broadcast. Volatile work counters never enter. */
struct IslandFingerprintInput
{
    uint64_t seed = 0;
    IslandConfig config;
    int winnerIsland = -1;
    int winnerEpoch = 0;
    std::vector<IslandStats> islands;
    std::vector<std::pair<int, std::vector<std::string>>> broadcasts;
};

uint64_t islandFingerprint(const IslandFingerprintInput &in);

/** Build the fingerprint input from a finished outcome. */
IslandFingerprintInput fingerprintInput(const IslandOutcome &outcome,
                                        uint64_t seed,
                                        const IslandConfig &cfg);

/**
 * Run a K-island repair in-process: one engine thread per island, the
 * barrier and the shared fitness store wired directly. With
 * cfg.islands == 1 this is exactly a plain RepairEngine::run() (same
 * seed, no migration hook) — the K=1 fingerprint-identity invariant.
 * @p snapshotDir, when non-empty, receives island-<k>.snap checkpoints
 * every generation; existing checkpoints are resumed (crash recovery).
 */
IslandOutcome runIslands(
    std::shared_ptr<const verilog::SourceFile> faulty,
    const std::string &tbModule, const std::string &dutModule,
    const sim::ProbeConfig &probe, const Trace &oracle,
    const EngineConfig &base, const IslandConfig &cfg,
    const std::string &snapshotDir = "",
    const std::function<void(const GenerationStats &)> &onGeneration =
        nullptr,
    const std::function<bool()> &shouldStop = nullptr);

} // namespace cirfix::core
