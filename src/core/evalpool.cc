#include "core/evalpool.h"

namespace cirfix::core {

EvalPool::EvalPool(int num_threads)
    : threads_(num_threads < 1 ? 1 : num_threads)
{
    workers_.reserve(static_cast<size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

EvalPool::~EvalPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
EvalPool::drainJobs()
{
    // The batch vector outlives every drainer: run() does not return
    // until pending_ == 0 and no worker is inside this function.
    const std::vector<std::function<void()>> &jobs = *jobs_;
    for (;;) {
        size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size())
            return;
        std::exception_ptr err;
        std::string msg;
        try {
            jobs[i]();
        } catch (const std::exception &e) {
            err = std::current_exception();
            msg = e.what();
        } catch (...) {
            err = std::current_exception();
            msg = "unknown exception";
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (err) {
            errors_[i] = err;
            errorMessages_[i] = std::move(msg);
            ++jobFailures_;
        }
        if (--pending_ == 0)
            done_.notify_all();
    }
}

void
EvalPool::workerLoop()
{
    uint64_t seen_batch = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (jobs_ && batchId_ != seen_batch);
        });
        if (stop_)
            return;
        seen_batch = batchId_;
        ++activeDrainers_;
        lock.unlock();
        drainJobs();
        lock.lock();
        if (--activeDrainers_ == 0)
            done_.notify_all();
    }
}

void
EvalPool::run(const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    if (threads_ == 1) {
        // Serial fast path: no locking, exceptions propagate directly
        // (the first job to throw is trivially the lowest-indexed).
        errorMessages_.assign(jobs.size(), std::string());
        for (size_t i = 0; i < jobs.size(); ++i) {
            try {
                jobs[i]();
            } catch (const std::exception &e) {
                errorMessages_[i] = e.what();
                ++jobFailures_;
                throw;
            } catch (...) {
                errorMessages_[i] = "unknown exception";
                ++jobFailures_;
                throw;
            }
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_ = &jobs;
        errors_.assign(jobs.size(), nullptr);
        errorMessages_.assign(jobs.size(), std::string());
        next_.store(0, std::memory_order_relaxed);
        pending_ = jobs.size();
        ++batchId_;
    }
    wake_.notify_all();
    drainJobs();
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock,
               [&] { return pending_ == 0 && activeDrainers_ == 0; });
    jobs_ = nullptr;
    for (auto &err : errors_)
        if (err)
            std::rethrow_exception(err);
}

const FitnessCache::Entry *
FitnessCache::find(const std::string &key)
{
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
}

void
FitnessCache::insert(const std::string &key, Entry entry)
{
    if (capacity_ == 0)
        return;
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->second = std::move(entry);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(entry));
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

} // namespace cirfix::core
