#pragma once

/**
 * @file
 * Unified candidate-evaluation outcome taxonomy.
 *
 * Mutants are adversarial by construction: they wedge FSMs, create
 * zero-delay oscillations, blow up event queues, and can crash the
 * interpreter outright. Every way an evaluation can end is classified
 * here so the engine can degrade each failure to worst fitness,
 * quarantine pathological patch keys, and report aggregate counts per
 * run instead of dying on the first bad candidate (the paper leans on
 * VCS timeouts for the same purpose).
 */

#include <array>
#include <string>

namespace cirfix::core {

enum class EvalOutcome {
    Ok = 0,     //!< simulated and scored normally
    ParseFail,  //!< structurally invalid ("compile error")
    ElabFail,   //!< elaboration rejected the design
    Runaway,    //!< statement/callback budget exhausted
    Deadline,   //!< per-candidate wall-clock watchdog fired
    Oom,        //!< per-candidate memory budget exhausted
    Crashed,    //!< any other exception escaping the evaluation
    EarlyAbort, //!< streaming-fitness cutoff stopped the simulation:
                //!< the candidate provably cannot reach the survival
                //!< threshold. Deliberate and benign — never
                //!< quarantined and never cached (a later generation
                //!< with a lower threshold must be able to re-score
                //!< the same patch fully).
    LintReject, //!< the static lint pre-screen found a *new*
                //!< error-severity diagnostic relative to the baseline
                //!< design's fingerprint (e.g. a fresh zero-delay
                //!< combinational loop): worst fitness without a
                //!< simulation. Never quarantined and never cached —
                //!< the decision is a pure function of the patch and
                //!< recomputing it is cheaper than a cache slot.
};

inline constexpr int kEvalOutcomeCount = 9;

const char *evalOutcomeName(EvalOutcome o);

/** Parse evalOutcomeName() output; throws std::runtime_error. */
EvalOutcome evalOutcomeFromName(const std::string &name);

/** True for outcomes that get a patch key quarantined for the run. */
inline bool
isQuarantineOutcome(EvalOutcome o)
{
    return o == EvalOutcome::Runaway || o == EvalOutcome::Deadline ||
           o == EvalOutcome::Oom || o == EvalOutcome::Crashed;
}

/** Per-run outcome accounting, surfaced in RepairResult. */
struct OutcomeCounts
{
    std::array<long, kEvalOutcomeCount> counts{};
    /** Evaluations answered from the quarantine list (no simulation). */
    long quarantineHits = 0;

    void add(EvalOutcome o) { ++counts[static_cast<size_t>(o)]; }
    long of(EvalOutcome o) const
    {
        return counts[static_cast<size_t>(o)];
    }

    /** Evaluations that did not end in EvalOutcome::Ok. */
    long failures() const;
    long total() const;

    /** One line: "ok=120 parse-fail=3 ... quarantine-hits=2". */
    std::string summary() const;
};

} // namespace cirfix::core
