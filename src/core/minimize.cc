#include "core/minimize.h"

namespace cirfix::core {

namespace {

Patch
subsetPatch(const Patch &base, const std::vector<bool> &keep)
{
    Patch p;
    for (size_t i = 0; i < base.edits.size(); ++i)
        if (keep[i])
            p.edits.push_back(base.edits[i]);
    return p;
}

} // namespace

Patch
minimizePatch(const Patch &patch,
              const std::function<bool(const Patch &)> &still_plausible,
              int *tests_out)
{
    int tests = 0;
    auto check = [&](const std::vector<bool> &keep) {
        ++tests;
        return still_plausible(subsetPatch(patch, keep));
    };

    size_t n = patch.edits.size();
    std::vector<bool> keep(n, true);
    if (n > 1) {
        // ddmin: try removing chunks of decreasing size.
        size_t chunk = (n + 1) / 2;
        while (chunk >= 1) {
            bool removed_any = false;
            for (size_t start = 0; start < n; start += chunk) {
                // Skip chunks already fully removed.
                bool live = false;
                for (size_t i = start; i < std::min(n, start + chunk);
                     ++i)
                    live |= keep[i];
                if (!live)
                    continue;
                std::vector<bool> trial = keep;
                for (size_t i = start; i < std::min(n, start + chunk);
                     ++i)
                    trial[i] = false;
                // Never test the empty subset: an empty patch is the
                // original (defective) program.
                bool any = false;
                for (bool k : trial)
                    any |= k;
                if (!any)
                    continue;
                if (check(trial)) {
                    keep = trial;
                    removed_any = true;
                }
            }
            if (chunk == 1 && !removed_any)
                break;
            if (!removed_any)
                chunk = (chunk + 1) / 2;
            else if (chunk > 1)
                chunk = (chunk + 1) / 2;
        }
        // Final 1-minimality sweep.
        for (size_t i = 0; i < n; ++i) {
            if (!keep[i])
                continue;
            std::vector<bool> trial = keep;
            trial[i] = false;
            bool any = false;
            for (bool k : trial)
                any |= k;
            if (any && check(trial))
                keep = trial;
        }
    }
    if (tests_out)
        *tests_out = tests;
    return subsetPatch(patch, keep);
}

} // namespace cirfix::core
