#include "core/oracle.h"

#include <cmath>

namespace cirfix::core {

Trace
thinOracle(const Trace &oracle, double fraction)
{
    if (fraction >= 1.0 || oracle.rows().size() <= 2)
        return oracle;
    if (fraction <= 0.0)
        fraction = 1.0 / static_cast<double>(oracle.rows().size());

    Trace out{std::vector<std::string>(oracle.vars())};
    size_t n = oracle.rows().size();
    size_t keep = std::max<size_t>(
        2, static_cast<size_t>(std::llround(fraction *
                                            static_cast<double>(n))));
    // Evenly spaced selection including both endpoints.
    double step = static_cast<double>(n - 1) /
                  static_cast<double>(keep - 1);
    size_t prev = n;  // sentinel
    for (size_t k = 0; k < keep; ++k) {
        size_t idx = static_cast<size_t>(
            std::llround(static_cast<double>(k) * step));
        if (idx >= n)
            idx = n - 1;
        if (idx == prev)
            continue;
        prev = idx;
        const Trace::Row &row = oracle.rows()[idx];
        out.addRow(row.time, row.values);
    }
    return out;
}

} // namespace cirfix::core
