#include "core/oracle.h"

#include <cmath>

namespace cirfix::core {

Trace
thinOracle(const Trace &oracle, double fraction)
{
    if (fraction >= 1.0 || oracle.rows().size() <= 2)
        return oracle;
    if (fraction <= 0.0)
        fraction = 1.0 / static_cast<double>(oracle.rows().size());

    Trace out{std::vector<std::string>(oracle.vars())};
    size_t n = oracle.rows().size();
    size_t keep = std::max<size_t>(
        2, static_cast<size_t>(std::llround(fraction *
                                            static_cast<double>(n))));
    // Evenly spaced selection including both endpoints.
    double step = static_cast<double>(n - 1) /
                  static_cast<double>(keep - 1);
    size_t prev = n;  // sentinel
    for (size_t k = 0; k < keep; ++k) {
        size_t idx = static_cast<size_t>(
            std::llround(static_cast<double>(k) * step));
        if (idx >= n)
            idx = n - 1;
        if (idx == prev)
            continue;
        prev = idx;
        const Trace::Row &row = oracle.rows()[idx];
        out.addRow(row.time, row.values);
    }
    return out;
}

FitnessResult
combineFitness(const FitnessResult &a, const FitnessResult &b)
{
    FitnessResult r;
    r.sum = a.sum + b.sum;
    r.total = a.total + b.total;
    r.bitMatches = a.bitMatches + b.bitMatches;
    r.bitMismatches = a.bitMismatches + b.bitMismatches;
    r.unknownMatches = a.unknownMatches + b.unknownMatches;
    r.unknownMismatches = a.unknownMismatches + b.unknownMismatches;
    r.fitness = r.total > 0 ? std::max(0.0, r.sum) / r.total : 0.0;
    return r;
}

Trace
agreementRows(const Trace &oracle, const Trace &sim)
{
    Trace out{std::vector<std::string>(oracle.vars())};
    for (const Trace::Row &row : oracle.rows()) {
        const Trace::Row *srow = sim.rowAt(row.time);
        if (!srow)
            continue;
        bool agree = true;
        for (size_t c = 0; agree && c < oracle.vars().size(); ++c) {
            int sc = sim.varIndex(oracle.vars()[c]);
            agree = sc >= 0 &&
                    static_cast<size_t>(sc) < srow->values.size() &&
                    row.values[c].identical(
                        srow->values[static_cast<size_t>(sc)]);
        }
        if (agree)
            out.addRow(row.time, row.values);
    }
    return out;
}

} // namespace cirfix::core
