#pragma once

/**
 * @file
 * The CirFix fitness function (paper Section 3.2).
 *
 * Given a simulation result S and expected output O — both traces
 * Time -> Var -> {0,1,x,z}* recorded by the instrumented testbench —
 * every bit of every variable at every oracle timestamp contributes to
 * a fitness sum:
 *
 *     +1    when both bits are the same defined value (0/0 or 1/1)
 *     +phi  when both bits are the same undefined value (x/x or z/z)
 *     -1    when both bits are defined but differ (0/1 or 1/0)
 *     -phi  when exactly one side is x/z (or x vs z)
 *
 * and the total possible fitness counts +1 for defined pairs and +phi
 * for pairs involving x/z. The normalized fitness is
 * max(0, sum) / total, so 1.0 means a plausible (testbench-adequate)
 * repair. phi > 1 makes ill-defined wires extra detrimental
 * (Section 4.2 uses phi = 2).
 */

#include <cstdint>

#include "sim/trace.h"

namespace cirfix::core {

using sim::Trace;

struct FitnessParams
{
    /** Extra weight for comparisons involving x/z bits. */
    double phi = 2.0;
};

struct FitnessResult
{
    double fitness = 0.0;  //!< normalized, in [0, 1]
    double sum = 0.0;      //!< raw fitness sum (can be negative)
    double total = 0.0;    //!< maximum achievable sum

    uint64_t bitMatches = 0;      //!< defined-value matches
    uint64_t bitMismatches = 0;   //!< defined-value mismatches
    uint64_t unknownMatches = 0;  //!< x/x or z/z pairs
    uint64_t unknownMismatches = 0;  //!< pairs with exactly one x/z side

    /** True when every compared bit agreed (testbench-adequate). */
    bool
    plausible() const
    {
        return total > 0 && sum >= total - 1e-9;
    }
};

/**
 * Compare a simulation result against the expected-behavior oracle.
 *
 * Variables are matched by name; oracle rows with no matching
 * simulation row (e.g., the candidate crashed or finished early) read
 * as all-x, which the -phi case penalizes. Simulation rows or
 * variables absent from the oracle are ignored (the developer chose
 * not to annotate them; see paper Section 5.4).
 */
FitnessResult evaluateFitness(const Trace &sim_result,
                              const Trace &expected,
                              const FitnessParams &params = {});

} // namespace cirfix::core
