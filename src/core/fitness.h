#pragma once

/**
 * @file
 * The CirFix fitness function (paper Section 3.2).
 *
 * Given a simulation result S and expected output O — both traces
 * Time -> Var -> {0,1,x,z}* recorded by the instrumented testbench —
 * every bit of every variable at every oracle timestamp contributes to
 * a fitness sum:
 *
 *     +1    when both bits are the same defined value (0/0 or 1/1)
 *     +phi  when both bits are the same undefined value (x/x or z/z)
 *     -1    when both bits are defined but differ (0/1 or 1/0)
 *     -phi  when exactly one side is x/z (or x vs z)
 *
 * and the total possible fitness counts +1 for defined pairs and +phi
 * for pairs involving x/z. The normalized fitness is
 * max(0, sum) / total, so 1.0 means a plausible (testbench-adequate)
 * repair. phi > 1 makes ill-defined wires extra detrimental
 * (Section 4.2 uses phi = 2).
 */

#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace cirfix::core {

using sim::Trace;

struct FitnessParams
{
    /** Extra weight for comparisons involving x/z bits. */
    double phi = 2.0;
};

struct FitnessResult
{
    double fitness = 0.0;  //!< normalized, in [0, 1]
    double sum = 0.0;      //!< raw fitness sum (can be negative)
    double total = 0.0;    //!< maximum achievable sum

    uint64_t bitMatches = 0;      //!< defined-value matches
    uint64_t bitMismatches = 0;   //!< defined-value mismatches
    uint64_t unknownMatches = 0;  //!< x/x or z/z pairs
    uint64_t unknownMismatches = 0;  //!< pairs with exactly one x/z side

    /** True when every compared bit agreed (testbench-adequate). */
    bool
    plausible() const
    {
        return total > 0 && sum >= total - 1e-9;
    }
};

/**
 * Compare a simulation result against the expected-behavior oracle.
 *
 * Variables are matched by name; oracle rows with no matching
 * simulation row (e.g., the candidate crashed or finished early) read
 * as all-x, which the -phi case penalizes. Simulation rows or
 * variables absent from the oracle are ignored (the developer chose
 * not to annotate them; see paper Section 5.4).
 */
FitnessResult evaluateFitness(const Trace &sim_result,
                              const Trace &expected,
                              const FitnessParams &params = {});

/**
 * Precomputed per-oracle-row score weights, shared across every
 * candidate evaluation of a run (they depend only on the oracle and
 * phi). suffixWeight[i] is the maximum fitness-sum contribution of
 * oracle rows i..end: each oracle bit contributes +1 if defined, +phi
 * otherwise, when the simulation matches it exactly — the best case
 * StreamingFitness::upperBound() assumes for unscored rows.
 */
struct OracleProfile
{
    std::vector<double> suffixWeight;  //!< size rows()+1, last entry 0

    static OracleProfile build(const Trace &expected,
                               const FitnessParams &params = {});
};

/**
 * Online version of evaluateFitness: scores each sampled clock-edge
 * row as the simulator produces it instead of materializing the full
 * trace first, and exposes an upper bound on the final fitness so the
 * engine can stop simulating candidates that provably cannot survive
 * selection.
 *
 * finish() is bit-identical to evaluateFitness() on the trace the fed
 * samples would have materialized: both walk oracle rows in order,
 * match simulation rows by exact timestamp, read missing rows/columns
 * as all-x, and accumulate in the same order with the same arithmetic.
 * Re-samples at the same instant replace the previous values (the
 * Trace::addRow contract), which is why the scorer holds one pending
 * row and only commits it once time advances past it.
 */
class StreamingFitness
{
  public:
    /**
     * @param expected The oracle trace; must outlive the scorer.
     * @param sim_vars Column names of the rows that will be fed (the
     *                 TraceRecorder's probe order).
     * @param profile  Optional precomputed weights for this oracle and
     *                 phi (built on the fly when null); must outlive
     *                 the scorer.
     */
    StreamingFitness(const Trace &expected,
                     const std::vector<std::string> &sim_vars,
                     const FitnessParams &params = {},
                     const OracleProfile *profile = nullptr);

    /** Feed the next sampled row; times must be non-decreasing. */
    void onSample(sim::SimTime time,
                  const std::vector<sim::LogicVec> &values);

    /**
     * Score all remaining oracle rows as missing (all-x) and return
     * the final result. Idempotent; onSample() is ignored afterwards.
     */
    const FitnessResult &finish();

    /**
     * Highest final fitness still reachable: every unscored oracle bit
     * assumed to match exactly. Monotonically non-increasing as rows
     * commit, and always >= the eventual finish().fitness.
     */
    double upperBound() const;

    /** Oracle rows committed so far (excludes the pending row). */
    size_t rowsScored() const { return next_; }

    /** Oracle rows the simulation actually reached, frozen by
     *  finish() before the missing-tail scoring: the per-candidate
     *  "work done" figure the bench reports. */
    size_t rowsReached() const { return reached_; }

  private:
    void commitPending();
    void scoreOracleRow(const Trace::Row &orow,
                        const std::vector<sim::LogicVec> *values);

    const Trace &expected_;
    FitnessParams params_;
    std::vector<int> simCol_;
    OracleProfile ownProfile_;        //!< used when none was passed in
    const OracleProfile *profile_;
    size_t next_ = 0;                 //!< first oracle row not scored
    size_t reached_ = 0;              //!< next_ when finish() ran
    bool havePending_ = false;
    sim::SimTime pendingTime_ = 0;
    std::vector<sim::LogicVec> pendingValues_;
    FitnessResult r_;
    bool finished_ = false;
};

/**
 * Tracks the generation's survival threshold for early-abort decisions:
 * the k-th best fitness among the values submitted so far (elites plus
 * already-evaluated offspring). Because submitting more values can only
 * raise the k-th best, any snapshot of threshold() is a lower bound on
 * the final cutoff — so a candidate whose upper bound falls strictly
 * below it is guaranteed to be dropped by the popSize-truncation merge
 * no matter what the remaining offspring score (see DESIGN.md,
 * "Streaming fitness & early abort").
 */
class SurvivalTracker
{
  public:
    /** @param k Survivor count (the engine's popSize). */
    explicit SurvivalTracker(size_t k) : k_(k) {}

    void
    submit(double fitness)
    {
        if (topK_.size() < k_) {
            topK_.push(fitness);
        } else if (!topK_.empty() && fitness > topK_.top()) {
            topK_.pop();
            topK_.push(fitness);
        }
    }

    /** True once k values have been submitted (threshold meaningful). */
    bool armed() const { return k_ > 0 && topK_.size() >= k_; }

    /** k-th best fitness seen, or -inf until armed. */
    double
    threshold() const
    {
        return armed() ? topK_.top()
                       : -std::numeric_limits<double>::infinity();
    }

  private:
    size_t k_;
    /** Min-heap holding the k best values submitted. */
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        topK_;
};

} // namespace cirfix::core
