#include "core/fitness.h"

#include <algorithm>

namespace cirfix::core {

using sim::Bit;
using sim::LogicVec;

FitnessResult
evaluateFitness(const Trace &sim_result, const Trace &expected,
                const FitnessParams &params)
{
    FitnessResult r;

    // Column mapping oracle var -> simulation var (by name).
    std::vector<int> sim_col(expected.vars().size(), -1);
    for (size_t i = 0; i < expected.vars().size(); ++i)
        sim_col[i] = sim_result.varIndex(expected.vars()[i]);

    for (const Trace::Row &orow : expected.rows()) {
        const Trace::Row *srow = sim_result.rowAt(orow.time);
        for (size_t v = 0; v < orow.values.size(); ++v) {
            const LogicVec &ov = orow.values[v];
            // Missing rows/columns read as all-x.
            LogicVec sv = LogicVec::xs(ov.width());
            if (srow && sim_col[v] >= 0 &&
                static_cast<size_t>(sim_col[v]) < srow->values.size())
                sv = srow->values[static_cast<size_t>(sim_col[v])]
                         .resized(ov.width());
            for (int b = 0; b < ov.width(); ++b) {
                Bit o = ov.bit(b), s = sv.bit(b);
                bool o_def = (o == Bit::Zero || o == Bit::One);
                bool s_def = (s == Bit::Zero || s == Bit::One);
                if (o_def && s_def) {
                    r.total += 1.0;
                    if (o == s) {
                        r.sum += 1.0;
                        ++r.bitMatches;
                    } else {
                        r.sum -= 1.0;
                        ++r.bitMismatches;
                    }
                } else {
                    r.total += params.phi;
                    if (o == s) {
                        r.sum += params.phi;
                        ++r.unknownMatches;
                    } else {
                        r.sum -= params.phi;
                        ++r.unknownMismatches;
                    }
                }
            }
        }
    }

    if (r.total > 0)
        r.fitness = std::max(0.0, r.sum) / r.total;
    return r;
}

} // namespace cirfix::core
