#include "core/fitness.h"

#include <algorithm>

namespace cirfix::core {

using sim::Bit;
using sim::LogicVec;

namespace {

/**
 * Score one oracle value against one (already width-matched) simulation
 * value. Shared by the batch and streaming paths so both accumulate in
 * the same order with the same arithmetic — the bit-identity guarantee
 * between evaluateFitness and StreamingFitness::finish rests on this.
 */
void
scoreBits(const LogicVec &ov, const LogicVec &sv, double phi,
          FitnessResult &r)
{
    for (int b = 0; b < ov.width(); ++b) {
        Bit o = ov.bit(b), s = sv.bit(b);
        bool o_def = (o == Bit::Zero || o == Bit::One);
        bool s_def = (s == Bit::Zero || s == Bit::One);
        if (o_def && s_def) {
            r.total += 1.0;
            if (o == s) {
                r.sum += 1.0;
                ++r.bitMatches;
            } else {
                r.sum -= 1.0;
                ++r.bitMismatches;
            }
        } else {
            r.total += phi;
            if (o == s) {
                r.sum += phi;
                ++r.unknownMatches;
            } else {
                r.sum -= phi;
                ++r.unknownMismatches;
            }
        }
    }
}

/** oracle var -> sim column (by name), -1 when absent. */
std::vector<int>
mapColumns(const Trace &expected, const std::vector<std::string> &sim_vars)
{
    std::vector<int> cols(expected.vars().size(), -1);
    for (size_t i = 0; i < expected.vars().size(); ++i) {
        for (size_t j = 0; j < sim_vars.size(); ++j) {
            if (sim_vars[j] == expected.vars()[i]) {
                cols[i] = static_cast<int>(j);
                break;
            }
        }
    }
    return cols;
}

} // namespace

FitnessResult
evaluateFitness(const Trace &sim_result, const Trace &expected,
                const FitnessParams &params)
{
    FitnessResult r;

    // Column mapping oracle var -> simulation var (by name).
    std::vector<int> sim_col = mapColumns(expected, sim_result.vars());

    for (const Trace::Row &orow : expected.rows()) {
        const Trace::Row *srow = sim_result.rowAt(orow.time);
        for (size_t v = 0; v < orow.values.size(); ++v) {
            const LogicVec &ov = orow.values[v];
            // Missing rows/columns read as all-x.
            LogicVec sv = LogicVec::xs(ov.width());
            if (srow && sim_col[v] >= 0 &&
                static_cast<size_t>(sim_col[v]) < srow->values.size())
                sv = srow->values[static_cast<size_t>(sim_col[v])]
                         .resized(ov.width());
            scoreBits(ov, sv, params.phi, r);
        }
    }

    if (r.total > 0)
        r.fitness = std::max(0.0, r.sum) / r.total;
    return r;
}

OracleProfile
OracleProfile::build(const Trace &expected, const FitnessParams &params)
{
    OracleProfile p;
    const auto &rows = expected.rows();
    p.suffixWeight.assign(rows.size() + 1, 0.0);
    for (size_t i = rows.size(); i-- > 0;) {
        double w = 0.0;
        for (const LogicVec &ov : rows[i].values) {
            for (int b = 0; b < ov.width(); ++b) {
                Bit o = ov.bit(b);
                w += (o == Bit::Zero || o == Bit::One) ? 1.0
                                                       : params.phi;
            }
        }
        p.suffixWeight[i] = p.suffixWeight[i + 1] + w;
    }
    return p;
}

StreamingFitness::StreamingFitness(const Trace &expected,
                                   const std::vector<std::string> &sim_vars,
                                   const FitnessParams &params,
                                   const OracleProfile *profile)
    : expected_(expected), params_(params),
      simCol_(mapColumns(expected, sim_vars)), profile_(profile)
{
    if (!profile_) {
        ownProfile_ = OracleProfile::build(expected, params);
        profile_ = &ownProfile_;
    }
}

void
StreamingFitness::scoreOracleRow(const Trace::Row &orow,
                                 const std::vector<LogicVec> *values)
{
    for (size_t v = 0; v < orow.values.size(); ++v) {
        const LogicVec &ov = orow.values[v];
        LogicVec sv = LogicVec::xs(ov.width());
        if (values && simCol_[v] >= 0 &&
            static_cast<size_t>(simCol_[v]) < values->size())
            sv = (*values)[static_cast<size_t>(simCol_[v])].resized(
                ov.width());
        scoreBits(ov, sv, params_.phi, r_);
    }
}

void
StreamingFitness::commitPending()
{
    const auto &rows = expected_.rows();
    // Oracle rows the simulation skipped past read as missing.
    while (next_ < rows.size() && rows[next_].time < pendingTime_)
        scoreOracleRow(rows[next_++], nullptr);
    if (next_ < rows.size() && rows[next_].time == pendingTime_)
        scoreOracleRow(rows[next_++], &pendingValues_);
    // Pending rows at non-oracle timestamps are simply ignored, like
    // rowAt misses in the batch path.
    havePending_ = false;
}

void
StreamingFitness::onSample(sim::SimTime time,
                           const std::vector<LogicVec> &values)
{
    if (finished_)
        return;
    // A re-sample at the same instant replaces the pending values
    // (Trace::addRow keeps the latest row for a timestamp), so a row
    // only commits once time has advanced past it.
    if (havePending_ && time != pendingTime_)
        commitPending();
    pendingTime_ = time;
    pendingValues_ = values;
    havePending_ = true;
}

const FitnessResult &
StreamingFitness::finish()
{
    if (finished_)
        return r_;
    if (havePending_)
        commitPending();
    reached_ = next_;
    const auto &rows = expected_.rows();
    while (next_ < rows.size())
        scoreOracleRow(rows[next_++], nullptr);
    if (r_.total > 0)
        r_.fitness = std::max(0.0, r_.sum) / r_.total;
    finished_ = true;
    return r_;
}

double
StreamingFitness::upperBound() const
{
    // Best case: every unscored oracle bit (including the pending,
    // uncommitted row) matches exactly, contributing its full weight to
    // both sum and total. (s+W)/(t+W) is increasing in W and any
    // mismatch strictly lowers it, so this dominates every completion.
    double w = profile_->suffixWeight[next_];
    double total = r_.total + w;
    if (total <= 0)
        return 0.0;
    return std::max(0.0, r_.sum + w) / total;
}

} // namespace cirfix::core
