#include "core/snapshot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/templates.h"
#include "verilog/parser.h"
#include "verilog/printer.h"

namespace cirfix::core {

namespace {

using verilog::StmtPtr;

[[noreturn]] void
corrupt(const std::string &what)
{
    throw std::runtime_error("corrupt snapshot: " + what);
}

/** Bit-exact double round-trip: %a out, strtod back. */
std::string
doubleToken(double d)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", d);
    return buf;
}

double
tokenToDouble(const std::string &tok)
{
    char *end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0')
        corrupt("bad floating-point token '" + tok + "'");
    return d;
}

EditKind
editKindFromName(const std::string &name)
{
    for (EditKind k : {EditKind::Replace, EditKind::InsertAfter,
                       EditKind::Delete, EditKind::Template})
        if (name == editKindName(k))
            return k;
    corrupt("unknown edit kind '" + name + "'");
}

TemplateKind
templateFromName(const std::string &name)
{
    for (TemplateKind k : allTemplatesExtended())
        if (name == templateName(k))
            return k;
    corrupt("unknown template kind '" + name + "'");
}

/**
 * Reparse a printed donor statement. Donor node ids are irrelevant:
 * applyEdit clones and renumbers donors on application, and
 * Edit::key() is the printed text, so print + reparse preserves patch
 * identity exactly (print(parse(x)) re-parses structurally identical).
 */
StmtPtr
reparseDonor(const std::string &text)
{
    std::string wrapped =
        "module __cirfix_snapshot_donor;\ninitial\n" + text +
        "\nendmodule\n";
    std::unique_ptr<verilog::SourceFile> file;
    try {
        file = verilog::parse(wrapped);
    } catch (const std::exception &e) {
        corrupt(std::string("donor statement does not reparse: ") +
                e.what());
    }
    if (file->modules.size() != 1)
        corrupt("donor wrapper parsed to multiple modules");
    for (auto &item : file->modules[0]->items)
        if (auto *ib = dynamic_cast<verilog::InitialBlock *>(item.get()))
            return std::move(ib->body);
    corrupt("donor wrapper lost its initial block");
}

// ---------------------------------------------------------------- writer

class Writer
{
  public:
    void
    line(const std::string &s)
    {
        os_ << s << '\n';
    }

    /** Length-prefixed payload that may contain anything. */
    void
    blob(const std::string &tag, const std::string &data)
    {
        os_ << tag << " blob " << data.size() << '\n' << data << '\n';
    }

    void
    writeVariant(const Variant &v)
    {
        std::ostringstream head;
        head << "variant " << (v.valid ? 1 : 0) << " "
             << (v.evaluated ? 1 : 0) << " "
             << evalOutcomeName(v.outcome);
        line(head.str());
        std::ostringstream fit;
        fit << "fitness " << doubleToken(v.fit.fitness) << " "
            << doubleToken(v.fit.sum) << " " << doubleToken(v.fit.total)
            << " " << v.fit.bitMatches << " " << v.fit.bitMismatches
            << " " << v.fit.unknownMatches << " "
            << v.fit.unknownMismatches;
        line(fit.str());
        blob("error", v.error);
        line("patch " + std::to_string(v.patch.edits.size()));
        for (const Edit &e : v.patch.edits) {
            std::ostringstream eh;
            eh << "edit " << editKindName(e.kind) << " " << e.target
               << " " << templateName(e.tmpl);
            line(eh.str());
            blob("param", e.param);
            blob("code", e.code ? verilog::printStmt(*e.code, 0) : "");
        }
        blob("trace", v.trace.toCsv());
    }

    std::string str() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

// ---------------------------------------------------------------- reader

class Reader
{
  public:
    explicit Reader(const std::string &text) : text_(text) {}

    std::string
    line()
    {
        size_t nl = text_.find('\n', pos_);
        if (nl == std::string::npos)
            corrupt("unexpected end of file");
        std::string s = text_.substr(pos_, nl - pos_);
        pos_ = nl + 1;
        return s;
    }

    /** Split the next line into whitespace tokens and check the tag. */
    std::vector<std::string>
    tokens(const std::string &tag, size_t expect)
    {
        std::istringstream is(line());
        std::vector<std::string> toks;
        std::string t;
        while (is >> t)
            toks.push_back(t);
        if (toks.empty() || toks[0] != tag)
            corrupt("expected '" + tag + "' record");
        if (expect && toks.size() != expect)
            corrupt("'" + tag + "' record has " +
                    std::to_string(toks.size() - 1) + " fields, want " +
                    std::to_string(expect - 1));
        return toks;
    }

    std::string
    blob(const std::string &tag)
    {
        auto toks = tokens(tag, 3);
        if (toks[1] != "blob")
            corrupt("'" + tag + "' is not a blob");
        size_t n = parseSize(toks[2]);
        if (pos_ + n + 1 > text_.size())
            corrupt("'" + tag + "' blob truncated");
        std::string data = text_.substr(pos_, n);
        pos_ += n;
        if (text_[pos_] != '\n')
            corrupt("'" + tag + "' blob missing terminator");
        ++pos_;
        return data;
    }

    long
    parseLong(const std::string &tok)
    {
        char *end = nullptr;
        long v = std::strtol(tok.c_str(), &end, 10);
        if (!end || *end != '\0')
            corrupt("bad integer '" + tok + "'");
        return v;
    }

    uint64_t
    parseU64(const std::string &tok)
    {
        char *end = nullptr;
        unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (!end || *end != '\0')
            corrupt("bad integer '" + tok + "'");
        return v;
    }

    size_t
    parseSize(const std::string &tok)
    {
        return static_cast<size_t>(parseU64(tok));
    }

    Variant
    readVariant()
    {
        Variant v;
        auto head = tokens("variant", 4);
        v.valid = parseLong(head[1]) != 0;
        v.evaluated = parseLong(head[2]) != 0;
        v.outcome = evalOutcomeFromName(head[3]);
        auto fit = tokens("fitness", 8);
        v.fit.fitness = tokenToDouble(fit[1]);
        v.fit.sum = tokenToDouble(fit[2]);
        v.fit.total = tokenToDouble(fit[3]);
        v.fit.bitMatches = parseU64(fit[4]);
        v.fit.bitMismatches = parseU64(fit[5]);
        v.fit.unknownMatches = parseU64(fit[6]);
        v.fit.unknownMismatches = parseU64(fit[7]);
        v.error = blob("error");
        auto patch = tokens("patch", 2);
        size_t nedits = parseSize(patch[1]);
        for (size_t i = 0; i < nedits; ++i) {
            auto eh = tokens("edit", 4);
            Edit e;
            e.kind = editKindFromName(eh[1]);
            e.target = static_cast<int>(parseLong(eh[2]));
            e.tmpl = templateFromName(eh[3]);
            e.param = blob("param");
            std::string code = blob("code");
            if (!code.empty())
                e.code = reparseDonor(code);
            v.patch.edits.push_back(std::move(e));
        }
        std::string csv = blob("trace");
        if (!csv.empty())
            v.trace = sim::Trace::fromCsv(csv);
        return v;
    }

    bool done() const { return pos_ >= text_.size(); }
    size_t pos() const { return pos_; }

  private:
    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

uint64_t
fingerprintSource(const std::string &text)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
encodeSnapshot(const EngineState &state)
{
    Writer w;
    w.line("CIRFIX-SNAPSHOT " + std::to_string(EngineState::kVersion));
    w.line("seed " + std::to_string(state.seed));
    w.line("fingerprint " + std::to_string(state.designFingerprint));
    w.blob("provenance", state.provenance);
    w.blob("rng", state.rngState);
    {
        std::ostringstream os;
        os << "progress " << state.generationsDone << " " << state.evals
           << " " << state.invalid << " " << state.mutants << " "
           << doubleToken(state.elapsedSeconds) << " "
           << doubleToken(state.bestSeen);
        w.line(os.str());
    }
    {
        std::ostringstream os;
        os << "stream " << state.earlyAborts << " " << state.rowsScored
           << " " << state.rowsSkipped << " " << state.lintRejects;
        w.line(os.str());
    }
    {
        std::ostringstream os;
        os << "compiled " << state.compiled.modulesCompiled << " "
           << state.compiled.modulesFallback << " "
           << state.compiled.combItems << " " << state.compiled.seqItems
           << " " << state.compiled.twoStateEvals << " "
           << state.compiled.fourStateFallbacks;
        w.line(os.str());
    }
    {
        std::ostringstream os;
        os << "island " << state.islandIndex << " " << state.islandCount
           << " " << state.migrationEpoch;
        w.line(os.str());
    }
    w.line("ledger " + std::to_string(state.migrantLedger.size()));
    for (const MigrantRecord &m : state.migrantLedger) {
        w.line("epoch " + std::to_string(m.epoch) + " " +
               std::to_string(m.keys.size()));
        for (const std::string &k : m.keys)
            w.blob("mkey", k);
    }
    w.line("witnesses " + std::to_string(state.witnesses.size()));
    for (const OracleBench &b : state.witnesses) {
        w.blob("wmodule", b.module);
        w.blob("wprovenance", b.provenance);
        w.blob("wsource", b.source);
        w.blob("wclock", b.probe.clock);
        w.line("wstart " + std::to_string(b.probe.startTime));
        w.line("wsignals " + std::to_string(b.probe.signals.size()));
        for (const std::string &s : b.probe.signals)
            w.blob("wsignal", s);
        w.blob("woracle", b.oracle.toCsv());
    }
    w.line("trajectory " + std::to_string(state.trajectory.size()));
    for (const auto &[at, best] : state.trajectory)
        w.line("point " + std::to_string(at) + " " + doubleToken(best));
    {
        std::ostringstream os;
        os << "outcomes";
        for (long c : state.outcomes.counts)
            os << " " << c;
        os << " " << state.outcomes.quarantineHits;
        w.line(os.str());
    }
    w.line("population " + std::to_string(state.population.size()));
    for (const Variant &v : state.population)
        w.writeVariant(v);
    w.line("quarantine " + std::to_string(state.quarantine.size()));
    for (const QuarantineRecord &q : state.quarantine) {
        w.blob("key", q.key);
        w.line("condemned " +
               std::string(evalOutcomeName(q.entry.outcome)));
        w.blob("error", q.entry.error);
    }
    w.line("cachestats " + std::to_string(state.cacheStats.hits) + " " +
           std::to_string(state.cacheStats.misses) + " " +
           std::to_string(state.cacheStats.evictions));
    w.line("cache " + std::to_string(state.cache.size()));
    for (const CacheRecord &c : state.cache) {
        w.blob("key", c.key);
        Variant v;
        v.valid = c.entry.valid;
        v.evaluated = true;
        v.fit = c.entry.fit;
        v.trace = c.entry.trace;
        v.outcome = c.entry.outcome;
        v.error = c.entry.error;
        w.writeVariant(v);
    }
    // Seal the body: the checksum covers every byte written so far, so
    // any bit flip inside a blob (which a length-prefixed parse would
    // accept) is caught on load.
    std::string body = w.str();
    w.line("checksum " + std::to_string(fingerprintSource(body)));
    w.line("end");
    return w.str();
}

namespace {

/**
 * Verify the sealing records before any content is parsed: the file
 * must end with "checksum <fnv>\nend\n" and the stored FNV-1a must
 * match the bytes before the checksum line. Doing this up front means
 * a bit flip deep inside a blob payload is reported as file damage
 * rather than as whatever downstream parse error it happens to cause.
 */
void
verifySeal(const std::string &text)
{
    const std::string endmark = "end\n";
    if (text.size() < endmark.size() ||
        text.compare(text.size() - endmark.size(), endmark.size(),
                     endmark) != 0)
        corrupt("missing 'end' marker (file truncated or has "
                "trailing garbage)");
    const std::string tag = "\nchecksum ";
    size_t cks = text.rfind(tag, text.size() - endmark.size() - 1);
    if (cks == std::string::npos)
        corrupt("missing 'checksum' record");
    size_t nl = text.find('\n', cks + 1);
    if (nl != text.size() - endmark.size() - 1)
        corrupt("'checksum' record is not the penultimate line");
    std::string tok = text.substr(cks + tag.size(),
                                  nl - cks - tag.size());
    char *end = nullptr;
    uint64_t want = std::strtoull(tok.c_str(), &end, 10);
    if (!end || *end != '\0' || tok.empty())
        corrupt("bad checksum value '" + tok + "'");
    uint64_t got = fingerprintSource(text.substr(0, cks + 1));
    if (want != got)
        corrupt("checksum mismatch (file damaged): stored " +
                std::to_string(want) + ", computed " +
                std::to_string(got));
}

} // namespace

EngineState
decodeSnapshot(const std::string &text)
{
    Reader r(text);
    EngineState st;
    long version;
    {
        auto magic = r.tokens("CIRFIX-SNAPSHOT", 2);
        version = r.parseLong(magic[1]);
        // Name both versions in the diagnostic so the remedy is
        // obvious: a too-new snapshot needs a newer binary, a too-old
        // one needs re-running (or a migration tool), never a "corrupt
        // snapshot" hunt.
        if (version > EngineState::kVersion)
            throw std::runtime_error(
                "snapshot version " + std::to_string(version) +
                " is newer than this build understands (it reads "
                "versions " +
                std::to_string(EngineState::kOldestReadableVersion) +
                ".." + std::to_string(EngineState::kVersion) +
                "); load it with the newer cirfix that wrote it");
        if (version < EngineState::kOldestReadableVersion)
            throw std::runtime_error(
                "snapshot version " + std::to_string(version) +
                " is older than this build understands (it reads "
                "versions " +
                std::to_string(EngineState::kOldestReadableVersion) +
                ".." + std::to_string(EngineState::kVersion) + ")");
    }
    verifySeal(text);
    st.seed = r.parseU64(r.tokens("seed", 2)[1]);
    st.designFingerprint = r.parseU64(r.tokens("fingerprint", 2)[1]);
    st.provenance = r.blob("provenance");
    st.rngState = r.blob("rng");
    {
        auto p = r.tokens("progress", 7);
        st.generationsDone = static_cast<int>(r.parseLong(p[1]));
        st.evals = r.parseLong(p[2]);
        st.invalid = r.parseLong(p[3]);
        st.mutants = r.parseLong(p[4]);
        st.elapsedSeconds = tokenToDouble(p[5]);
        st.bestSeen = tokenToDouble(p[6]);
    }
    {
        auto s = r.tokens("stream", 5);
        st.earlyAborts = r.parseLong(s[1]);
        st.rowsScored = r.parseU64(s[2]);
        st.rowsSkipped = r.parseU64(s[3]);
        st.lintRejects = r.parseLong(s[4]);
    }
    {
        auto c = r.tokens("compiled", 7);
        st.compiled.modulesCompiled = r.parseU64(c[1]);
        st.compiled.modulesFallback = r.parseU64(c[2]);
        st.compiled.combItems = r.parseU64(c[3]);
        st.compiled.seqItems = r.parseU64(c[4]);
        st.compiled.twoStateEvals = r.parseU64(c[5]);
        st.compiled.fourStateFallbacks = r.parseU64(c[6]);
    }
    if (version >= 8) {
        auto isl = r.tokens("island", 4);
        st.islandIndex = static_cast<int>(r.parseLong(isl[1]));
        st.islandCount = static_cast<int>(r.parseLong(isl[2]));
        st.migrationEpoch = static_cast<int>(r.parseLong(isl[3]));
        size_t nled = r.parseSize(r.tokens("ledger", 2)[1]);
        for (size_t i = 0; i < nled; ++i) {
            auto e = r.tokens("epoch", 3);
            MigrantRecord m;
            m.epoch = static_cast<int>(r.parseLong(e[1]));
            size_t nkeys = r.parseSize(e[2]);
            for (size_t k = 0; k < nkeys; ++k)
                m.keys.push_back(r.blob("mkey"));
            st.migrantLedger.push_back(std::move(m));
        }
    }
    // (v7 snapshots carry the defaults: island -1 of 0, empty ledger —
    // exactly what a plain single-population run records.)
    size_t nwit = r.parseSize(r.tokens("witnesses", 2)[1]);
    for (size_t i = 0; i < nwit; ++i) {
        OracleBench b;
        b.module = r.blob("wmodule");
        b.provenance = r.blob("wprovenance");
        b.source = r.blob("wsource");
        b.probe.clock = r.blob("wclock");
        b.probe.startTime = static_cast<sim::SimTime>(
            r.parseU64(r.tokens("wstart", 2)[1]));
        size_t nsig = r.parseSize(r.tokens("wsignals", 2)[1]);
        for (size_t s = 0; s < nsig; ++s)
            b.probe.signals.push_back(r.blob("wsignal"));
        std::string csv = r.blob("woracle");
        if (!csv.empty())
            b.oracle = sim::Trace::fromCsv(csv);
        st.witnesses.push_back(std::move(b));
    }
    size_t npoints = r.parseSize(r.tokens("trajectory", 2)[1]);
    for (size_t i = 0; i < npoints; ++i) {
        auto p = r.tokens("point", 3);
        st.trajectory.emplace_back(r.parseLong(p[1]),
                                   tokenToDouble(p[2]));
    }
    {
        auto o = r.tokens("outcomes",
                          static_cast<size_t>(kEvalOutcomeCount) + 2);
        for (int i = 0; i < kEvalOutcomeCount; ++i)
            st.outcomes.counts[static_cast<size_t>(i)] =
                r.parseLong(o[static_cast<size_t>(i) + 1]);
        st.outcomes.quarantineHits =
            r.parseLong(o[static_cast<size_t>(kEvalOutcomeCount) + 1]);
    }
    size_t npop = r.parseSize(r.tokens("population", 2)[1]);
    for (size_t i = 0; i < npop; ++i)
        st.population.push_back(r.readVariant());
    size_t nquar = r.parseSize(r.tokens("quarantine", 2)[1]);
    for (size_t i = 0; i < nquar; ++i) {
        QuarantineRecord q;
        q.key = r.blob("key");
        auto c = r.tokens("condemned", 2);
        q.entry.outcome = evalOutcomeFromName(c[1]);
        q.entry.error = r.blob("error");
        st.quarantine.push_back(std::move(q));
    }
    {
        auto cs = r.tokens("cachestats", 4);
        st.cacheStats.hits = r.parseLong(cs[1]);
        st.cacheStats.misses = r.parseLong(cs[2]);
        st.cacheStats.evictions = r.parseLong(cs[3]);
    }
    size_t ncache = r.parseSize(r.tokens("cache", 2)[1]);
    for (size_t i = 0; i < ncache; ++i) {
        CacheRecord c;
        c.key = r.blob("key");
        Variant v = r.readVariant();
        c.entry.valid = v.valid;
        c.entry.fit = v.fit;
        c.entry.trace = std::move(v.trace);
        c.entry.outcome = v.outcome;
        c.entry.error = std::move(v.error);
        st.cache.push_back(std::move(c));
    }
    {
        // The checksum record covers every byte before itself.
        size_t body_end = r.pos();
        uint64_t want = r.parseU64(r.tokens("checksum", 2)[1]);
        uint64_t got = fingerprintSource(text.substr(0, body_end));
        if (want != got)
            corrupt("checksum mismatch (file damaged): stored " +
                    std::to_string(want) + ", computed " +
                    std::to_string(got));
    }
    r.tokens("end", 1);
    if (!r.done())
        corrupt("trailing garbage after 'end' marker");
    return st;
}

void
saveSnapshot(const std::string &path, const EngineState &state)
{
    std::string data = encodeSnapshot(state);
    // Write-then-rename in the same directory: a crash mid-write leaves
    // the previous snapshot intact, never a torn file.
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write snapshot temp file " +
                                     tmp);
        os.write(data.data(),
                 static_cast<std::streamsize>(data.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " + path);
    }
}

EngineState
loadSnapshot(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read snapshot " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return decodeSnapshot(buf.str());
}

std::string
encodeVariants(const std::vector<Variant> &variants)
{
    Writer w;
    w.line("CIRFIX-VARIANTS 1");
    w.line("count " + std::to_string(variants.size()));
    for (const Variant &v : variants)
        w.writeVariant(v);
    return w.str();
}

std::vector<Variant>
decodeVariants(const std::string &text)
{
    Reader r(text);
    auto magic = r.tokens("CIRFIX-VARIANTS", 2);
    if (r.parseLong(magic[1]) != 1)
        corrupt("unsupported variants version " + magic[1]);
    size_t n = r.parseSize(r.tokens("count", 2)[1]);
    std::vector<Variant> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(r.readVariant());
    if (!r.done())
        corrupt("trailing garbage after variants");
    return out;
}

} // namespace cirfix::core
