#pragma once

/**
 * @file
 * Fix localization (paper Section 3.6).
 *
 * Fault localization says *where* to edit; fix localization restricts
 * *what* may be inserted or substituted there, cutting the fraction of
 * mutants that fail to compile. Following the paper:
 *
 *  - insertion sources are statements (IEEE 1364 Annex A.6.4
 *    statement types) drawn from the module under repair, and
 *  - insertions are only made into initial/always blocks (statements
 *    elsewhere violate the Verilog grammar, Annex A.6.2);
 *  - a replacement target may only receive an item of the same type or
 *    one sharing its immediate parent type in the formal grammar (for
 *    statements, the shared parent production is `statement`).
 *
 * With fix localization disabled (the ablation of Section 3.6), donor
 * statements are drawn from every module of the file — including the
 * testbench, whose statements reference names that do not exist in the
 * DUT — which is what produces the high invalid-mutant rate the paper
 * reports (35% without vs 10% with).
 */

#include <vector>

#include "verilog/ast.h"

namespace cirfix::core {

/** One mutable statement slot discovered in procedural code. */
struct StmtSlotInfo
{
    int id = -1;
    verilog::NodeKind kind = verilog::NodeKind::NullStmt;
    /** True when the statement sits directly inside a begin/end block
     *  (i.e., it is a legal insertion anchor). */
    bool inBlock = false;
};

/** The search-space restriction computed for one program variant. */
struct FixLocSpace
{
    /** Donor statement ids (insertion/replacement sources). */
    std::vector<int> donorIds;
    /** Editable statement slots in the module under repair. */
    std::vector<StmtSlotInfo> slots;
};

/** Every statement slot in the procedural code of @p mod. */
std::vector<StmtSlotInfo> collectStmtSlots(const verilog::Module &mod);

/**
 * Compute the fix-localization space for @p dut.
 *
 * @param file      The whole design (testbench + DUT).
 * @param dut       The module under repair.
 * @param enabled   When false, donors come from every module in the
 *                  file (the ablation configuration).
 */
FixLocSpace computeFixLoc(const verilog::SourceFile &file,
                          const verilog::Module &dut, bool enabled);

/**
 * May @p donor_kind legally substitute for @p target_kind?
 * Statements share the `statement` parent production, so any statement
 * can replace any statement; everything else requires an exact match.
 */
bool replacementCompatible(verilog::NodeKind target_kind,
                           verilog::NodeKind donor_kind);

} // namespace cirfix::core
