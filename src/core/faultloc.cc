#include "core/faultloc.h"

namespace cirfix::core {

using namespace verilog;
using sim::LogicVec;

namespace {

/** Last path component: "dut.counter_out" -> "counter_out". */
std::string
leafName(const std::string &path)
{
    size_t dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
}

/** Base identifier names written by an lvalue expression. */
void
lhsNames(const Expr &lhs, std::vector<std::string> &out)
{
    switch (lhs.kind) {
      case NodeKind::Ident:
        out.push_back(lhs.as<Ident>()->name);
        break;
      case NodeKind::Index:
        out.push_back(lhs.as<Index>()->name);
        break;
      case NodeKind::RangeSel:
        out.push_back(lhs.as<RangeSel>()->name);
        break;
      case NodeKind::Concat:
        for (auto &p : lhs.as<Concat>()->parts)
            lhsNames(*p, out);
        break;
      default:
        break;
    }
}

/** True if any identifier beneath @p e is in @p names. */
bool
mentionsAny(const Expr &e,
            const std::unordered_set<std::string> &names)
{
    for (auto &n : collectIdents(e))
        if (names.count(n))
            return true;
    return false;
}

/** The controlling expression of a conditional-like node, if any. */
const Expr *
controlExpr(const Node &n)
{
    switch (n.kind) {
      case NodeKind::If: return n.as<If>()->cond.get();
      case NodeKind::While: return n.as<While>()->cond.get();
      case NodeKind::For: return n.as<For>()->cond.get();
      case NodeKind::Case: return n.as<Case>()->subject.get();
      case NodeKind::Ternary: return n.as<Ternary>()->cond.get();
      default: return nullptr;
    }
}

/** The assignment target of an assignment-like node, if any. */
const Expr *
assignTarget(const Node &n)
{
    switch (n.kind) {
      case NodeKind::Assign: return n.as<Assign>()->lhs.get();
      case NodeKind::ContAssign: return n.as<ContAssign>()->lhs.get();
      default: return nullptr;
    }
}

} // namespace

std::unordered_set<std::string>
outputMismatch(const Trace &sim_result, const Trace &expected)
{
    std::unordered_set<std::string> mismatch;
    std::vector<int> sim_col(expected.vars().size(), -1);
    for (size_t i = 0; i < expected.vars().size(); ++i)
        sim_col[i] = sim_result.varIndex(expected.vars()[i]);

    for (const Trace::Row &orow : expected.rows()) {
        const Trace::Row *srow = sim_result.rowAt(orow.time);
        for (size_t v = 0; v < orow.values.size(); ++v) {
            const std::string &name = expected.vars()[v];
            if (mismatch.count(leafName(name)))
                continue;
            const LogicVec &ov = orow.values[v];
            LogicVec sv = LogicVec::xs(ov.width());
            if (srow && sim_col[v] >= 0 &&
                static_cast<size_t>(sim_col[v]) < srow->values.size())
                sv = srow->values[static_cast<size_t>(sim_col[v])]
                         .resized(ov.width());
            if (!sv.identical(ov))
                mismatch.insert(leafName(name));
        }
    }
    return mismatch;
}

FaultLocResult
faultLocalize(const Module &dut,
              std::unordered_set<std::string> mismatch_seed)
{
    FaultLocResult res;
    std::unordered_set<std::string> &mismatch = res.mismatchNames;
    std::unordered_set<std::string> next = std::move(mismatch_seed);

    // Fixed point: iterate while the mismatch set grows.
    while (!next.empty()) {
        ++res.iterations;
        bool grew = false;
        for (const std::string &n : next)
            grew |= mismatch.insert(n).second;
        next.clear();
        if (!grew && res.iterations > 1)
            break;

        // Walk with the stack of enclosing controlling expressions so
        // implicated assignments also pull in their *control
        // dependencies*: the conditions an assignment executes under
        // (Section 3.1: the analysis "transitively captures data and
        // control dependencies").
        std::vector<const Expr *> ctrl_stack;
        std::function<void(Node &)> walk = [&](Node &node) {
            bool implicated = false;
            if (const Expr *target = assignTarget(node)) {
                std::vector<std::string> names;
                lhsNames(*target, names);
                for (auto &n : names)
                    implicated |= (mismatch.count(n) > 0);
            }
            if (!implicated) {
                if (const Expr *ctrl = controlExpr(node))
                    implicated = mentionsAny(*ctrl, mismatch);
            }
            if (implicated) {
                // (Add-Child): the node and its whole subtree join FL;
                // identifiers beneath it join the mismatch set.
                visitAll(node, [&](Node &sub) {
                    res.nodeIds.insert(sub.id);
                    std::string name;
                    if (sub.kind == NodeKind::Ident)
                        name = sub.as<Ident>()->name;
                    else if (sub.kind == NodeKind::Index)
                        name = sub.as<Index>()->name;
                    else if (sub.kind == NodeKind::RangeSel)
                        name = sub.as<RangeSel>()->name;
                    if (!name.empty() && !mismatch.count(name))
                        next.insert(name);
                });
                // Control dependencies: names read by every enclosing
                // condition flow into the mismatch set too.
                for (const Expr *cond : ctrl_stack)
                    for (auto &n : collectIdents(*cond))
                        if (!mismatch.count(n))
                            next.insert(n);
            }
            bool pushed = false;
            if (const Expr *ctrl = controlExpr(node)) {
                ctrl_stack.push_back(ctrl);
                pushed = true;
            }
            node.forEachChild([&](Node *c) {
                if (c)
                    walk(*c);
            });
            if (pushed)
                ctrl_stack.pop_back();
        };
        walk(const_cast<Module &>(dut));

        if (res.iterations > 64)
            break;  // defensive bound; |names| is finite so unreachable
    }
    return res;
}

FaultLocResult
faultLocalize(const Module &dut, const Trace &sim_result,
              const Trace &expected)
{
    return faultLocalize(dut, outputMismatch(sim_result, expected));
}

} // namespace cirfix::core
