#pragma once

/**
 * @file
 * Brute-force repair baseline (paper Section 5.1, RQ1).
 *
 * The paper compares CirFix against "a more straightforward search
 * algorithm applying edits at uniform to a circuit design": no fault
 * localization to narrow the target set, no fitness function to rank
 * partial progress — just enumerate single edits in random order and
 * check each candidate against the testbench until one is plausible
 * or the budget runs out.
 */

#include "core/engine.h"

namespace cirfix::core {

struct BruteForceResult
{
    bool found = false;
    Patch patch;
    long candidatesTried = 0;
    double seconds = 0.0;
};

/**
 * Enumerate uniform single edits (every template at every site, every
 * statement deletion, and random replace/insert pairs) in shuffled
 * order and evaluate each with @p engine until a plausible repair
 * appears or @p max_seconds elapses.
 */
BruteForceResult bruteForceRepair(RepairEngine &engine,
                                  const verilog::SourceFile &faulty,
                                  const std::string &dut_module,
                                  double max_seconds, uint64_t seed);

} // namespace cirfix::core
