#pragma once

/**
 * @file
 * The main CirFix repair loop (paper Algorithm 1).
 *
 * Genetic programming over repair patches: maintain a population of
 * program variants (edit lists over the faulty design's numbered AST);
 * each generation, tournament-select parents, re-run fault
 * localization on each parent (supporting dependent multi-edit
 * repairs), and produce children via repair templates (probability
 * rtThreshold), mutation (mutThreshold of the remainder) or single-
 * point crossover. Candidates are scored by the hardware fitness
 * function against the expected-behavior oracle; a candidate with
 * fitness 1.0 is a plausible repair, which is then minimized with
 * delta debugging before being reported.
 */

#include <chrono>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/evalpool.h"
#include "core/faultloc.h"
#include "core/fitness.h"
#include "core/minimize.h"
#include "core/mutation.h"
#include "core/patch.h"
#include "sim/design.h"
#include "sim/probe.h"

namespace cirfix::core {

/** GP and resource parameters (paper Section 4.2 defaults, scaled). */
struct EngineConfig
{
    int popSize = 40;
    int maxGenerations = 8;
    double rtThreshold = 0.2;   //!< repair-template probability
    double mutThreshold = 0.7;  //!< mutation (vs crossover) probability
    MutationConfig mutation;    //!< delete/insert/replace = .3/.3/.4
    int tournamentSize = 5;
    double elitism = 0.05;      //!< top fraction carried over unchanged
    FitnessParams fitness;      //!< phi = 2
    uint64_t seed = 1;
    double maxSeconds = 60.0;   //!< wall-clock bound for the trial
    sim::RunLimits simLimits{100'000, 150'000, 300'000};
    /** Re-run fault localization for every parent (paper behavior);
     *  false computes it once on the original (ablation). */
    bool relocalize = true;
    /**
     * Candidate evaluations run concurrently on this many threads
     * (<= 0 selects std::thread::hardware_concurrency()). The repair
     * search is deterministic per seed at ANY thread count: all
     * stochastic decisions are drawn on the main thread before
     * fan-out and results merge in child order (see DESIGN.md,
     * "Parallel evaluation").
     */
    int numThreads = 0;
    /** LRU bound of the patch-keyed fitness cache (0 disables it). */
    size_t fitnessCacheSize = 512;
    /**
     * Optional progress hook, called after each generation with the
     * generation index, the best fitness in the new population, and
     * the cumulative fitness-evaluation count (the artifact's
     * repair_logs analogue).
     */
    std::function<void(int generation, double best_fitness,
                       long fitness_evals)>
        onGeneration;
};

/** One population member. */
struct Variant
{
    Patch patch;
    FitnessResult fit;
    sim::Trace trace;     //!< instrumented-testbench output (cached)
    bool valid = false;   //!< structurally valid ("compiles")
    bool evaluated = false;
};

/** Outcome of one repair trial. */
struct RepairResult
{
    bool found = false;
    Patch patch;                    //!< minimized repair (when found)
    std::string repairedSource;     //!< regenerated Verilog
    FitnessResult finalFitness;
    int generations = 0;
    long fitnessEvals = 0;          //!< fitness probes (simulations)
    long invalidMutants = 0;        //!< mutants rejected by validation
    long totalMutants = 0;
    double seconds = 0.0;
    /** (probe index, best fitness) at each improvement — RQ3 data. */
    std::vector<std::pair<long, double>> fitnessTrajectory;
    /** Fitness-cache accounting for the trial (hits/misses/evictions). */
    CacheStats cache;
};

/**
 * Repair engine bound to one defect scenario: a faulty design (DUT +
 * instrumented testbench), a probe configuration, and the
 * expected-behavior oracle.
 */
class RepairEngine
{
  public:
    RepairEngine(std::shared_ptr<const verilog::SourceFile> faulty,
                 std::string tb_module, std::string dut_module,
                 sim::ProbeConfig probe, Trace oracle,
                 EngineConfig config);

    /** Run Algorithm 1 until a repair is found or resources run out. */
    RepairResult run();

    /**
     * Evaluate one patch: apply, validate, elaborate, simulate, score,
     * going through the fitness cache. Exposed for the brute-force
     * baseline, minimization and tests. Main thread only.
     */
    Variant evaluate(const Patch &patch);

    /**
     * Cache-free, counter-free evaluation. Thread-safe: touches only
     * immutable engine state (the faulty AST, probe, oracle, config)
     * and objects owned by the call, so any number of invocations may
     * run concurrently. This is what run() fans out to worker threads.
     */
    Variant evaluateUncached(const Patch &patch) const;

    const EngineConfig &config() const { return config_; }
    const Trace &oracle() const { return oracle_; }
    /** Fitness-cache accounting so far (also placed in RepairResult). */
    const CacheStats &cacheStats() const { return cache_.stats(); }

  private:
    /**
     * Evaluate a batch of candidate patches: cache lookups and
     * in-batch deduplication on the calling thread, cache misses
     * fanned out to the pool, results merged (and the cache updated)
     * in child order. @p simulated_out receives, per child, whether a
     * real simulation ran (the caller charges evals_ in order).
     */
    std::vector<Variant>
    evaluateBatch(const std::vector<Patch> &patches,
                  std::vector<bool> &simulated_out);
    EvalPool &pool();
    const Variant &tournament(const std::vector<Variant> &popn);
    FaultLocResult localize(const Variant &v,
                            const verilog::SourceFile &ast) const;

    std::shared_ptr<const verilog::SourceFile> faulty_;
    std::string tbModule_, dutModule_;
    sim::ProbeConfig probe_;
    Trace oracle_;
    EngineConfig config_;
    std::mt19937_64 rng_;
    FitnessCache cache_;
    std::unique_ptr<EvalPool> pool_;  //!< created lazily by run()
    long evals_ = 0;
    long invalid_ = 0;
    long mutants_ = 0;
};

/**
 * Unbiased uniform draw from [0, n): the modulo idiom rng() % n skews
 * toward small values when n does not divide 2^64 (tournament
 * selection bias); this uses std::uniform_int_distribution instead.
 */
size_t uniformIndex(std::mt19937_64 &rng, size_t n);

} // namespace cirfix::core
