#pragma once

/**
 * @file
 * The main CirFix repair loop (paper Algorithm 1).
 *
 * Genetic programming over repair patches: maintain a population of
 * program variants (edit lists over the faulty design's numbered AST);
 * each generation, tournament-select parents, re-run fault
 * localization on each parent (supporting dependent multi-edit
 * repairs), and produce children via repair templates (probability
 * rtThreshold), mutation (mutThreshold of the remainder) or single-
 * point crossover. Candidates are scored by the hardware fitness
 * function against the expected-behavior oracle; a candidate with
 * fitness 1.0 is a plausible repair, which is then minimized with
 * delta debugging before being reported.
 */

#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaloutcome.h"
#include "core/evalpool.h"
#include "lint/lint.h"
#include "core/faultloc.h"
#include "core/fitness.h"
#include "core/minimize.h"
#include "core/mutation.h"
#include "core/oracle.h"
#include "core/patch.h"
#include "sim/design.h"
#include "sim/probe.h"

namespace cirfix::core {

struct EngineState;

/** One population member. */
struct Variant
{
    Patch patch;
    FitnessResult fit;
    sim::Trace trace;     //!< instrumented-testbench output (cached)
    bool valid = false;   //!< structurally valid ("compiles")
    bool evaluated = false;
    /** How the evaluation ended; anything but Ok means worst fitness.
     *  EarlyAbort is the exception: the candidate simulated normally
     *  until the streaming cutoff fired, and fit holds the partial
     *  score (remaining oracle rows read as missing). */
    EvalOutcome outcome = EvalOutcome::Ok;
    /** Diagnostic message for non-Ok outcomes. */
    std::string error;
    /** Oracle rows actually scored against simulation output when the
     *  evaluation used the streaming scorer (0 otherwise). */
    uint64_t rowsScored = 0;
    /** Compiled-backend counters of this evaluation's design (all
     *  zero under the event backend or when elaboration failed). */
    sim::CompiledStats compiled;
};

/** Why a quarantined patch key is never re-simulated. */
struct QuarantineEntry
{
    EvalOutcome outcome = EvalOutcome::Crashed;
    std::string error;
};

/** One migration epoch's imported-migrant record (island runs): which
 *  patch keys this island injected at that epoch's generation
 *  boundary. Snapshotted (v8) so a resumed island — and the
 *  coordinator auditing it — can verify the replayed exchange matches
 *  the original bit for bit. */
struct MigrantRecord
{
    int epoch = 0;
    std::vector<std::string> keys;
};

/** GP and resource parameters (paper Section 4.2 defaults, scaled). */
struct EngineConfig
{
    int popSize = 40;
    int maxGenerations = 8;
    double rtThreshold = 0.2;   //!< repair-template probability
    double mutThreshold = 0.7;  //!< mutation (vs crossover) probability
    MutationConfig mutation;    //!< delete/insert/replace = .3/.3/.4
    int tournamentSize = 5;
    double elitism = 0.05;      //!< top fraction carried over unchanged
    FitnessParams fitness;      //!< phi = 2
    uint64_t seed = 1;
    double maxSeconds = 60.0;   //!< wall-clock bound for the trial
    sim::RunLimits simLimits{100'000, 150'000, 300'000};
    /** Re-run fault localization for every parent (paper behavior);
     *  false computes it once on the original (ablation). */
    bool relocalize = true;
    /**
     * Candidate evaluations run concurrently on this many threads
     * (<= 0 selects std::thread::hardware_concurrency()). The repair
     * search is deterministic per seed at ANY thread count: all
     * stochastic decisions are drawn on the main thread before
     * fan-out and results merge in child order (see DESIGN.md,
     * "Parallel evaluation").
     */
    int numThreads = 0;
    /** LRU bound of the patch-keyed fitness cache (0 disables it). */
    size_t fitnessCacheSize = 512;
    /**
     * Streaming-fitness early abort: stop simulating a candidate once
     * the upper bound on its final fitness falls strictly below the
     * generation's survival threshold (the popSize-th best fitness
     * among elites and offspring evaluated so far). Sound by
     * construction — an aborted candidate is guaranteed to be dropped
     * by the popSize-truncation merge, so final repair results are
     * bit-identical to full evaluation (see DESIGN.md, "Streaming
     * fitness & early abort"). Cache accounting may differ: aborted
     * evaluations are never cached.
     */
    bool earlyAbort = true;
    /**
     * Children produced per generation (lambda). 0 keeps the classic
     * popSize offspring. With the default merge (elites + popSize
     * children truncated to popSize) the cutoff rarely fires; raising
     * lambda above popSize makes selection pressure — and the abort —
     * do real work per generation.
     */
    int offspringPerGen = 0;
    /**
     * Wall-clock deadline per candidate evaluation in seconds, layered
     * on the statement/callback budgets (0 disables). Reaps candidates
     * that burn real time without burning budget — the analogue of the
     * VCS timeout the paper's pipeline relies on. Generous by default
     * so slow sanitizer builds never trip it on honest candidates.
     */
    double evalDeadlineSeconds = 30.0;
    /** Per-evaluation memory budget in bytes, charged in sim::Design
     *  signal/memory/event allocation (0 = unlimited). */
    uint64_t evalMemoryBudget = 64ull << 20;
    /** Fault plan compiled into every candidate simulation; used by
     *  the fault-injection tests, all-zero (inert) in production. */
    sim::FaultPlan faultPlan;
    /**
     * Static lint pre-screen: after a mutant passes validation but
     * before any simulation, lint it and compare its error-severity
     * fingerprint against the baseline (faulty) design's. A candidate
     * with a *new* error — a fresh zero-delay combinational loop, a
     * fresh multiply-driven net — is assigned worst fitness with
     * EvalOutcome::LintReject and never simulated. Pre-existing warts
     * of the defective design never reject anything (the diff is
     * against the baseline fingerprint, not zero). The decision is a
     * pure function of the patch, so results stay bit-identical per
     * seed at any thread count.
     */
    bool lintPrescreen = true;
    /** Severity overrides / waivers applied by the pre-screen. */
    lint::Options lintOptions;
    /**
     * Simulation backend for candidate evaluations (see
     * sim::SimBackend). Compiled/Auto lower DUT modules inside the
     * compilable subset to levelized cycle-based bytecode and fall
     * back to the event interpreter per module; sampled outputs are
     * bit-identical, so fitness values — and therefore the whole
     * search trajectory — do not depend on this knob. Witness benches
     * always run event-driven (reference semantics).
     */
    sim::SimBackend backend = sim::SimBackend::Event;
    /** Snapshot file path; non-empty enables checkpointing. */
    std::string snapshotPath;
    /** Recorded as EngineState::provenance in every checkpoint (fleet
     *  worker name); informational only — never affects the search. */
    std::string snapshotProvenance;
    /** Generations between snapshots (>= 1). */
    int snapshotEvery = 1;
    /**
     * Also snapshot the search state the moment a plausible winner is
     * found (before minimization). Off by default: generation-boundary
     * snapshots keep their bit-identical-resume contract. The hardened
     * repair loop (witness.h) turns this on so that, when the winner
     * turns out to overfit the held-out bench, the run can resume from
     * the exact discovery point — RNG stream, population, quarantine
     * and counters intact — under the hardened oracle.
     */
    bool snapshotOnWin = false;
    /**
     * Auxiliary witness benches (see witness.h). Every candidate that
     * passes the main-bench simulation is also simulated under each of
     * these, and the per-bench fitness results fold into one combined
     * score (combineFitness) — so plausibility requires matching the
     * main oracle AND every witness. Streaming early abort stays sound:
     * the main-bench cutoff is transformed so a candidate aborts only
     * when even a perfect witness score could not reach the survival
     * threshold.
     */
    std::vector<OracleBench> witnessBenches;
    /**
     * Optional progress hook, called after each generation with a
     * GenerationStats snapshot (the artifact's repair_logs analogue).
     * Fired after the generation's checkpoint is durable, so a
     * subscriber never observes progress that a crash could lose.
     */
    std::function<void(const struct GenerationStats &)> onGeneration;
    /**
     * Cooperative cancellation: polled at generation boundaries and
     * between planning steps inside a generation. Returning true ends
     * the run with RepairResult::stopped set (no repair, counters
     * reflect work actually done). The repair service uses this for
     * client-initiated cancel; nullptr means never stop early.
     */
    std::function<bool()> shouldStop;

    // ---------------- island-model evolution (see island.h) ----------
    /** Generations per migration epoch; 0 disables migration epochs.
     *  When > 0 and onMigration is set, the engine fires the hook at
     *  every generation boundary that completes an epoch. */
    int migrationInterval = 0;
    /** This run's island id within a K-island job (-1: not an island
     *  run). Recorded in every snapshot (v8) and validated on resume —
     *  an island-2 snapshot never silently resumes as island 0. */
    int islandIndex = -1;
    /** Total islands K of the job this run belongs to (0: plain run). */
    int islandCount = 0;
    /**
     * Migration hook, fired on the main thread at each epoch boundary
     * (after the elitism merge, before the boundary snapshot) with the
     * 1-based epoch and the truncated population. Returns the migrant
     * set to inject; injection touches no RNG state, so the island's
     * own stochastic stream is independent of what (or when) the hook
     * answers. The hook may block — a distributed island waits here
     * for the coordinator's barrier — and may signal termination by
     * arranging for shouldStop to return true afterwards.
     */
    std::function<std::vector<Variant>(int epoch,
                                       const std::vector<Variant> &)>
        onMigration;

    // ---------------- cross-fleet cache sharing ----------------------
    /**
     * Fleet-shared fitness lookup, consulted once per evaluation batch
     * for the keys that missed the local cache. Hits skip simulation
     * and are adopted into the local cache; they carry exact scores
     * (aborted evaluations are never published), so the search
     * trajectory — population sequence, winner, final patch — is
     * bit-identical with or without sharing. Only the work-accounting
     * counters (evals, rows scored, early aborts) depend on what the
     * rest of the fleet already scored.
     */
    std::function<void(
        const std::vector<std::string> &keys,
        std::unordered_map<std::string, FitnessCache::Entry> *cache_hits,
        std::unordered_map<std::string, QuarantineEntry>
            *quarantine_hits)>
        fleetLookup;
    /** Fleet-shared publish, called once per batch with the entries
     *  this engine freshly scored (exact results only) and the keys it
     *  freshly condemned. */
    std::function<void(
        const std::vector<std::pair<std::string, FitnessCache::Entry>>
            &scored,
        const std::vector<std::pair<std::string, QuarantineEntry>>
            &condemned)>
        fleetPublish;
};

/** Per-generation progress report passed to EngineConfig::onGeneration. */
struct GenerationStats
{
    int generation = 0;       //!< 1-based index of the finished generation
    double bestFitness = 0.0; //!< best fitness in the new population
    long fitnessEvals = 0;    //!< cumulative simulations so far
    long invalidMutants = 0;  //!< cumulative structurally invalid mutants
    long totalMutants = 0;    //!< cumulative children produced
    OutcomeCounts outcomes;   //!< cumulative per-outcome counts
    CacheStats cache;         //!< fitness-cache accounting so far
    size_t quarantined = 0;   //!< condemned patch keys so far
    long lintRejects = 0;     //!< candidates rejected by the pre-screen
    int witnessBenches = 0;   //!< witness benches active this run
    /** Cumulative compiled-backend counters (all zero under Event). */
    sim::CompiledStats compiled;
    double elapsedSeconds = 0.0;
    /** Evaluations satisfied by the fleet-shared cache so far. */
    long fleetCacheHits = 0;
    /** Island id of this run (-1 for a plain, non-island run). */
    int island = -1;
    /** Migration epochs completed so far (0 without migration). */
    int epoch = 0;
};

/** Outcome of one repair trial. */
struct RepairResult
{
    bool found = false;
    Patch patch;                    //!< minimized repair (when found)
    std::string repairedSource;     //!< regenerated Verilog
    FitnessResult finalFitness;
    int generations = 0;
    long fitnessEvals = 0;          //!< fitness probes (simulations)
    long invalidMutants = 0;        //!< mutants rejected by validation
    long totalMutants = 0;
    double seconds = 0.0;
    /** True when EngineConfig::shouldStop ended the run early (the
     *  run was canceled, not exhausted). */
    bool stopped = false;
    /** (probe index, best fitness) at each improvement — RQ3 data. */
    std::vector<std::pair<long, double>> fitnessTrajectory;
    /** Fitness-cache accounting for the trial (hits/misses/evictions). */
    CacheStats cache;
    /** Per-outcome evaluation counts (failure containment report). */
    OutcomeCounts outcomes;
    /** Candidates stopped by the streaming-fitness cutoff. */
    long earlyAborts = 0;
    /** Oracle rows scored against simulation output (streaming evals). */
    uint64_t rowsScored = 0;
    /** Oracle rows the cutoff skipped (work saved by early abort). */
    uint64_t rowsSkipped = 0;
    /** Candidates rejected by the lint pre-screen (not simulated). */
    long lintRejects = 0;
    /** Witness benches the run's oracle was hardened with. */
    int witnessBenches = 0;
    /** Overfit patches demoted by a witness before this result (only
     *  set by the hardened repair loop; 0 for plain runs). */
    int overfitKills = 0;
    /** Cumulative compiled-backend counters over every fresh
     *  evaluation of the trial (all zero under Event). */
    sim::CompiledStats compiled;
    /** Evaluations satisfied by the fleet-shared cache (island runs;
     *  0 without a fleetLookup hook). Work accounting, not part of the
     *  deterministic search fingerprint. */
    long fleetCacheHits = 0;
    /** Candidates condemned by a fleet-shared quarantine hit. */
    long fleetQuarantineHits = 0;
    /** Per-epoch imported-migrant keys (island runs; empty without
     *  migration). Deterministic per (seed, K, migration schedule). */
    std::vector<MigrantRecord> migrantLedger;
};

/**
 * Repair engine bound to one defect scenario: a faulty design (DUT +
 * instrumented testbench), a probe configuration, and the
 * expected-behavior oracle.
 */
class RepairEngine
{
  public:
    RepairEngine(std::shared_ptr<const verilog::SourceFile> faulty,
                 std::string tb_module, std::string dut_module,
                 sim::ProbeConfig probe, Trace oracle,
                 EngineConfig config);

    /** Run Algorithm 1 until a repair is found or resources run out. */
    RepairResult run();

    /**
     * Continue a run from a snapshot (see snapshot.h). The restored
     * run is bit-identical to the uninterrupted one: RNG stream,
     * population, quarantine, cache contents and counters all resume
     * exactly where the snapshot was taken.
     *
     * @throws std::runtime_error when the snapshot was taken against a
     *         different design (fingerprint mismatch) or is corrupt.
     */
    RepairResult resume(const EngineState &state);

    /**
     * Evaluate one patch: apply, validate, elaborate, simulate, score,
     * going through the fitness cache. Exposed for the brute-force
     * baseline, minimization and tests. Main thread only.
     */
    Variant evaluate(const Patch &patch);

    /**
     * Per-evaluation knobs for the streaming scorer. Defaults
     * reproduce classic batch scoring exactly.
     */
    struct EvalHints
    {
        /** Score online as samples arrive (bit-identical results). */
        bool streaming = false;
        /** Stop the simulation once the fitness upper bound falls
         *  strictly below this (-inf never aborts). Requires
         *  streaming. */
        double abortThreshold =
            -std::numeric_limits<double>::infinity();
    };

    /**
     * Cache-free, counter-free evaluation. Thread-safe: touches only
     * immutable engine state (the faulty AST, probe, oracle, config)
     * and objects owned by the call, so any number of invocations may
     * run concurrently. This is what run() fans out to worker threads.
     */
    Variant evaluateUncached(const Patch &patch) const;

    /** As above, with streaming/early-abort control. */
    Variant evaluateUncached(const Patch &patch,
                             const EvalHints &hints) const;

    const EngineConfig &config() const { return config_; }
    const Trace &oracle() const { return oracle_; }
    /** Fitness-cache accounting so far (also placed in RepairResult). */
    const CacheStats &cacheStats() const { return cache_.stats(); }
    /** Per-outcome evaluation counts so far. */
    const OutcomeCounts &outcomes() const { return outcomes_; }
    /** Keys condemned by a Runaway/Deadline/Oom/Crashed evaluation. */
    size_t quarantineSize() const { return quarantine_.size(); }
    /** Imported-migrant ledger so far (island runs; see MigrantRecord). */
    const std::vector<MigrantRecord> &migrantLedger() const
    {
        return migrantLedger_;
    }

  private:
    /** run() and resume() share one loop; @p restore is null for a
     *  fresh run. */
    RepairResult runInternal(const EngineState *restore);

    /** Serialize the complete search state (see snapshot.h). */
    EngineState
    captureState(int generations_done, const std::vector<Variant> &popn,
                 double elapsed_seconds, double best_seen,
                 const std::vector<std::pair<long, double>> &trajectory)
        const;

    /** Build the worst-fitness Variant a quarantine hit returns. */
    Variant quarantinedVariant(const Patch &patch,
                               const QuarantineEntry &entry) const;

    /**
     * Evaluate a batch of candidate patches: cache lookups and
     * in-batch deduplication on the calling thread, cache misses
     * fanned out to the pool, results merged (and the cache updated)
     * in child order. @p simulated_out receives, per child, whether a
     * real simulation ran (the caller charges evals_ in order).
     *
     * @p elite_fitness, when non-null, arms the early-abort cutoff:
     * the values seed a SurvivalTracker (they are the merge-pool
     * members already known — the generation's elites), offspring
     * results feed it in child order at fixed-size chunk boundaries,
     * and each chunk's jobs run with the threshold snapshotted at
     * dispatch. Chunk size is a constant, so the aborted set is
     * deterministic for a seed at any thread count.
     */
    std::vector<Variant>
    evaluateBatch(const std::vector<Patch> &patches,
                  std::vector<bool> &simulated_out,
                  const std::vector<double> *elite_fitness = nullptr);
    EvalPool &pool();
    const Variant &tournament(const std::vector<Variant> &popn);
    FaultLocResult localize(const Variant &v,
                            const verilog::SourceFile &ast) const;

    /**
     * Simulate @p patched under every configured witness bench and fold
     * the per-bench scores into v.fit. Returns false (and marks @p v
     * failed with the offending bench named in v.error) when a witness
     * simulation ends in a pathology instead of a result. Thread-safe
     * like evaluateUncached: reads only immutable engine state.
     */
    bool scoreWitnessBenches(const verilog::SourceFile &patched,
                             Variant &v) const;

    /** Per-witness-bench immutable runtime state (parsed TB source,
     *  worst-case score of a missing trace). */
    struct WitnessRuntime
    {
        const OracleBench *bench = nullptr;  //!< into config_'s vector
        std::shared_ptr<const verilog::SourceFile> file;
        FitnessResult missing;  //!< empty trace scored vs the oracle
    };

    std::shared_ptr<const verilog::SourceFile> faulty_;
    std::string tbModule_, dutModule_;
    sim::ProbeConfig probe_;
    Trace oracle_;
    EngineConfig config_;
    /** Shared per-oracle-row weights for upper-bound computation;
     *  immutable after construction (worker threads read it). */
    OracleProfile oracleProfile_;
    /** Witness benches parsed and profiled once at construction;
     *  immutable afterwards (worker threads read them). */
    std::vector<WitnessRuntime> witnessRt_;
    /** Total achievable fitness sum over all witness benches (the T_w
     *  of the early-abort threshold transform). */
    double witnessTotal_ = 0.0;
    std::mt19937_64 rng_;
    FitnessCache cache_;
    std::unique_ptr<EvalPool> pool_;  //!< created lazily by run()
    long evals_ = 0;
    long invalid_ = 0;
    long mutants_ = 0;
    long earlyAborts_ = 0;
    uint64_t rowsScored_ = 0;
    uint64_t rowsSkipped_ = 0;
    long lintRejects_ = 0;
    /** Compiled-backend counters accumulated over fresh evaluations,
     *  merged in child order like the outcome counts. */
    sim::CompiledStats compiledStats_;
    /** Baseline design's error-severity lint fingerprint; immutable
     *  after construction (worker threads read it). */
    lint::Fingerprint baselineLintFp_;
    OutcomeCounts outcomes_;
    /** Patch keys that crashed/ran away once: never re-simulated.
     *  Main thread only, like the cache. */
    std::unordered_map<std::string, QuarantineEntry> quarantine_;
    /** Evaluations satisfied by the fleet-shared cache / quarantine. */
    long fleetCacheHits_ = 0;
    long fleetQuarantineHits_ = 0;
    /** Imported-migrant keys per completed epoch (island runs). */
    std::vector<MigrantRecord> migrantLedger_;
};

/**
 * Unbiased uniform draw from [0, n): the modulo idiom rng() % n skews
 * toward small values when n does not divide 2^64 (tournament
 * selection bias); this uses std::uniform_int_distribution instead.
 */
size_t uniformIndex(std::mt19937_64 &rng, size_t n);

} // namespace cirfix::core
