#include "core/evaloutcome.h"

#include <sstream>
#include <stdexcept>

namespace cirfix::core {

const char *
evalOutcomeName(EvalOutcome o)
{
    switch (o) {
      case EvalOutcome::Ok: return "ok";
      case EvalOutcome::ParseFail: return "parse-fail";
      case EvalOutcome::ElabFail: return "elab-fail";
      case EvalOutcome::Runaway: return "runaway";
      case EvalOutcome::Deadline: return "deadline";
      case EvalOutcome::Oom: return "oom";
      case EvalOutcome::Crashed: return "crashed";
      case EvalOutcome::EarlyAbort: return "early-abort";
      case EvalOutcome::LintReject: return "lint-reject";
    }
    return "?";
}

EvalOutcome
evalOutcomeFromName(const std::string &name)
{
    for (int i = 0; i < kEvalOutcomeCount; ++i) {
        EvalOutcome o = static_cast<EvalOutcome>(i);
        if (name == evalOutcomeName(o))
            return o;
    }
    throw std::runtime_error("unknown evaluation outcome: " + name);
}

long
OutcomeCounts::failures() const
{
    return total() - of(EvalOutcome::Ok);
}

long
OutcomeCounts::total() const
{
    long t = 0;
    for (long c : counts)
        t += c;
    return t;
}

std::string
OutcomeCounts::summary() const
{
    std::ostringstream os;
    for (int i = 0; i < kEvalOutcomeCount; ++i) {
        if (i)
            os << " ";
        os << evalOutcomeName(static_cast<EvalOutcome>(i)) << "="
           << counts[static_cast<size_t>(i)];
    }
    os << " quarantine-hits=" << quarantineHits;
    return os.str();
}

} // namespace cirfix::core
