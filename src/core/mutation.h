#pragma once

/**
 * @file
 * Repair operators: mutation and crossover (paper Sections 3.4-3.6).
 *
 * The mutate operator picks one of three sub-types by the configured
 * thresholds — replace, insert, delete — targeting statements
 * implicated by fault localization and drawing donor code from the fix
 * localization space. Crossover is standard single-point crossover on
 * the edit lists of two parent patches.
 */

#include <optional>
#include <random>
#include <unordered_set>

#include "core/fixloc.h"
#include "core/patch.h"

namespace cirfix::core {

struct MutationConfig
{
    double deleteThreshold = 0.3;
    double insertThreshold = 0.3;
    double replaceThreshold = 0.4;
    /** Restrict donors/targets per Section 3.6 (ablation knob). */
    bool useFixLoc = true;
    /** Offer the extended template set (beyond the paper's nine). */
    bool extendedTemplates = false;
};

/**
 * Generates mutation and template edits against concrete program
 * variants. Stateless apart from the RNG reference, so one Mutator can
 * serve the whole GP run.
 */
class Mutator
{
  public:
    Mutator(std::mt19937_64 &rng, MutationConfig config)
        : rng_(rng), config_(config)
    {}

    /**
     * Produce one mutation edit for the variant @p ast (already
     * patched), where @p dut is the module under repair inside it and
     * @p fl_set the fault localization over that tree. Returns nullopt
     * when no applicable site exists (e.g., no statements at all).
     */
    std::optional<Edit> mutate(const verilog::SourceFile &ast,
                               const verilog::Module &dut,
                               const std::unordered_set<int> &fl_set);

    /** Produce one repair-template edit (Algorithm 1 line 8). */
    std::optional<Edit> templateEdit(const verilog::SourceFile &ast,
                                     const verilog::Module &dut,
                                     const std::unordered_set<int> &fl_set);

  private:
    double chance() { return dist_(rng_); }
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[rng_() % v.size()];
    }

    std::mt19937_64 &rng_;
    MutationConfig config_;
    std::uniform_real_distribution<double> dist_{0.0, 1.0};
};

/**
 * Single-point crossover: choose a cut point in each parent's edit
 * list and swap the tails (paper Section 3.4). Returns two children.
 */
std::pair<Patch, Patch> crossover(const Patch &a, const Patch &b,
                                  std::mt19937_64 &rng);

} // namespace cirfix::core
