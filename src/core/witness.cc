#include "core/witness.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "lint/netgraph.h"
#include "sim/elaborate.h"
#include "verilog/parser.h"

namespace cirfix::core {

using verilog::Module;
using verilog::PortDir;
using verilog::SourceFile;

namespace {

/** Internal sampling clock of every generated bench: drives the DUT
 *  clock port (when one exists) and paces the TraceRecorder. */
constexpr const char *kBenchClock = "__wclk";

bool
isClockName(const std::string &name)
{
    std::string low;
    for (char c : name)
        low.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return low == "clk" || low == "clock" || low == "mclk" ||
           low == "sysclk";
}

uint64_t
maskToWidth(uint64_t value, int width)
{
    if (width >= 64)
        return value;
    if (width <= 0)
        return value & 1;
    return value & ((1ull << width) - 1);
}

std::string
valueLiteral(uint64_t value, int width)
{
    int w = std::max(1, std::min(width, 64));
    return std::to_string(w) + "'d" +
           std::to_string(maskToWidth(value, w));
}

std::string
rangeDecl(int width)
{
    return width > 1 ? "[" + std::to_string(width - 1) + ":0] " : "";
}

} // namespace

WitnessInterface
deriveWitnessInterface(const SourceFile &file,
                       const std::string &dut_module)
{
    const Module *mod = file.findModule(dut_module);
    if (!mod)
        throw std::runtime_error("witness: no module '" + dut_module +
                                 "' in the design");
    lint::ModuleInfo info = lint::analyzeModule(*mod, file);

    WitnessInterface iface;
    iface.dutModule = dut_module;
    for (const verilog::Port &p : mod->ports) {
        int width = info.width(p.name).value_or(1);
        if (p.dir == PortDir::Input) {
            if (iface.clockPort.empty() && isClockName(p.name)) {
                iface.clockPort = p.name;
                continue;
            }
            iface.inputs.push_back(WitnessInput{p.name, width});
        } else {
            // Outputs and inouts are both observed (inouts are never
            // driven by the bench, so they behave as outputs here).
            iface.outputs.push_back(WitnessInput{p.name, width});
        }
    }
    return iface;
}

std::string
makeWitnessBenchSource(const WitnessInterface &iface,
                       const StepMatrix &steps,
                       const std::string &tb_module,
                       int clock_half_period)
{
    const int period = 2 * clock_half_period;
    std::ostringstream os;
    os << "module " << tb_module << ";\n";
    os << "  reg " << kBenchClock << ";\n";
    os << "  reg [31:0] __wstep;\n";
    for (const WitnessInput &in : iface.inputs)
        os << "  reg " << rangeDecl(in.width) << in.name << ";\n";
    for (const WitnessInput &out : iface.outputs)
        os << "  wire " << rangeDecl(out.width) << out.name << ";\n";
    os << "  " << iface.dutModule << " dut(";
    bool first = true;
    auto conn = [&](const std::string &port, const std::string &sig) {
        os << (first ? "" : ", ") << "." << port << "(" << sig << ")";
        first = false;
    };
    if (!iface.clockPort.empty())
        conn(iface.clockPort, kBenchClock);
    for (const WitnessInput &in : iface.inputs)
        conn(in.name, in.name);
    for (const WitnessInput &out : iface.outputs)
        conn(out.name, out.name);
    os << ");\n";
    os << "  initial " << kBenchClock << " = 0;\n";
    os << "  always #" << clock_half_period << " " << kBenchClock
       << " = !" << kBenchClock << ";\n";
    // Step k's inputs are applied at time k*period (k = 0 at time 0,
    // before the first posedge at half_period), so posedge k samples
    // the settled response to row k. $finish fires one period after
    // the last row was applied: the last sample has happened, the
    // next posedge never does.
    os << "  initial begin\n";
    for (size_t k = 0; k < steps.size(); ++k) {
        os << "    " << (k == 0 ? "" : "#" + std::to_string(period) + " ")
           << "__wstep = 32'd" << k << ";\n";
        for (size_t i = 0;
             i < iface.inputs.size() && i < steps[k].size(); ++i)
            os << "    " << iface.inputs[i].name << " = "
               << valueLiteral(steps[k][i], iface.inputs[i].width)
               << ";\n";
    }
    os << "    #" << period << " $finish;\n";
    os << "  end\n";
    os << "endmodule\n";
    return os.str();
}

sim::ProbeConfig
witnessProbe(const WitnessInterface &iface)
{
    sim::ProbeConfig probe;
    probe.clock = kBenchClock;
    for (const WitnessInput &out : iface.outputs)
        probe.signals.push_back(out.name);
    return probe;
}

Trace
runWitnessBench(const std::string &dut_src, const OracleBench &bench,
                const sim::RunLimits &limits)
{
    auto file = std::shared_ptr<const SourceFile>(
        verilog::parse(dut_src + "\n" + bench.source));
    auto design = sim::elaborate(std::move(file), bench.module);
    sim::TraceRecorder rec(*design, bench.probe);
    design->run(limits);
    return rec.takeTrace();
}

StepMatrix
minimizeWitnessSteps(
    const StepMatrix &steps,
    const std::function<bool(const StepMatrix &)> &discriminates,
    int *tests_out)
{
    StepMatrix cur = steps;
    int tests = 0;
    auto check = [&](const StepMatrix &t) {
        ++tests;
        return discriminates(t);
    };
    auto without = [](const StepMatrix &m, size_t start, size_t len) {
        StepMatrix t;
        t.reserve(m.size() - len);
        for (size_t i = 0; i < m.size(); ++i)
            if (i < start || i >= start + len)
                t.push_back(m[i]);
        return t;
    };

    // Chunk phase: remove runs of rows, halving the chunk size each
    // time a full pass removes nothing. Never tests the empty matrix.
    for (size_t chunk = (cur.size() + 1) / 2;
         chunk >= 1 && cur.size() > 1;) {
        bool removed = false;
        for (size_t start = 0;
             start < cur.size() && cur.size() > 1;) {
            size_t len = std::min(chunk, cur.size() - start);
            if (len >= cur.size())
                break;  // removing everything is never a witness
            StepMatrix trial = without(cur, start, len);
            if (check(trial)) {
                cur = std::move(trial);
                removed = true;  // retry the same position
            } else {
                start += len;
            }
        }
        if (!removed) {
            if (chunk == 1)
                break;
            chunk = std::max<size_t>(1, chunk / 2);
        }
    }

    // 1-minimality sweep to a fixpoint: afterwards, removing any single
    // remaining row breaks discrimination (so re-minimizing an already
    // minimal stimulus is the identity).
    bool changed = cur.size() > 1;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < cur.size() && cur.size() > 1;) {
            StepMatrix trial = without(cur, i, 1);
            if (check(trial)) {
                cur = std::move(trial);
                changed = true;
            } else {
                ++i;
            }
        }
    }
    if (tests_out)
        *tests_out += tests;
    return cur;
}

WitnessSearchResult
findWitness(const std::string &golden_dut_src,
            const std::string &patched_dut_src,
            const std::string &dut_module, const WitnessOptions &opts,
            const std::string &tb_module, const std::string &provenance)
{
    WitnessSearchResult res;
    auto gfile = verilog::parse(golden_dut_src);
    WitnessInterface iface = deriveWitnessInterface(*gfile, dut_module);
    sim::ProbeConfig probe = witnessProbe(iface);

    auto benchFor = [&](const StepMatrix &steps) {
        OracleBench b;
        b.module = tb_module;
        b.source = makeWitnessBenchSource(iface, steps, tb_module,
                                          opts.clockHalfPeriod);
        b.probe = probe;
        return b;
    };

    // 1 = discriminates, 0 = agrees, -1 = golden run failed (an unusable
    // stimulus — skipped, never installed). A patched-design failure
    // under a stimulus the golden design survives IS discrimination:
    // the engine scores such a candidate as failed too.
    auto verdict = [&](const StepMatrix &steps,
                       Trace *patched_out) -> int {
        OracleBench b = benchFor(steps);
        Trace golden;
        try {
            golden = runWitnessBench(golden_dut_src, b, opts.simLimits);
        } catch (const std::exception &) {
            return -1;
        }
        if (golden.rows().empty())
            return -1;
        Trace patched;
        try {
            patched =
                runWitnessBench(patched_dut_src, b, opts.simLimits);
        } catch (const std::exception &) {
            return 1;
        }
        if (patched_out)
            *patched_out = patched;
        return evaluateFitness(patched, golden, opts.fitness).plausible()
                   ? 0
                   : 1;
    };

    std::mt19937_64 rng(opts.seed);
    size_t max_cycles =
        static_cast<size_t>(std::max(1, opts.maxCycles));
    auto randomValue = [&](int width) {
        // Bias toward the boundary patterns (all-zeros, all-ones) that
        // exercise resets, carries and saturation; otherwise uniform.
        uint64_t r = rng();
        switch (r & 3) {
          case 0: return uint64_t{0};
          case 1: return maskToWidth(~uint64_t{0}, width);
          default: return maskToWidth(r >> 2, width);
        }
    };
    auto randomSteps = [&]() {
        StepMatrix m(1 + uniformIndex(rng, max_cycles));
        for (auto &row : m) {
            row.reserve(iface.inputs.size());
            for (const WitnessInput &in : iface.inputs)
                row.push_back(randomValue(in.width));
        }
        return m;
    };
    auto mutateSteps = [&](StepMatrix m) {
        switch (uniformIndex(rng, 3)) {
          case 0:  // grow: repeat the last row, then perturb below
            if (m.size() < max_cycles)
                m.push_back(m.back());
            [[fallthrough]];
          default:  // perturb one cell
            if (!iface.inputs.empty()) {
                size_t r = uniformIndex(rng, m.size());
                size_t c = uniformIndex(rng, iface.inputs.size());
                m[r][c] = randomValue(iface.inputs[c].width);
            }
            break;
          case 2:  // shrink
            if (m.size() > 1)
                m.erase(m.begin() +
                        static_cast<long>(uniformIndex(rng, m.size())));
            break;
        }
        return m;
    };

    // Coverage-guided random search: stimuli whose patched-design
    // response is novel (fresh trace fingerprint) seed the mutation
    // pool — behaviors near the edge of explored space are the most
    // likely to straddle a disagreement.
    std::vector<StepMatrix> pool;
    std::unordered_set<uint64_t> seen;
    StepMatrix winner;
    bool found = false;
    while (res.tries < opts.maxTries) {
        StepMatrix cand =
            !pool.empty() && uniformIndex(rng, 2) == 0
                ? mutateSteps(pool[uniformIndex(rng, pool.size())])
                : randomSteps();
        ++res.tries;
        Trace patched;
        int v = verdict(cand, &patched);
        if (v < 0)
            continue;
        if (seen.insert(fingerprintSource(patched.toCsv())).second)
            pool.push_back(cand);
        if (v == 1) {
            winner = std::move(cand);
            found = true;
            break;
        }
    }
    res.coveragePool = pool.size();
    if (!found)
        return res;

    res.stepsBeforeMin = winner.size();
    res.steps = minimizeWitnessSteps(
        winner,
        [&](const StepMatrix &s) {
            return !s.empty() && verdict(s, nullptr) == 1;
        },
        &res.minimizeTests);
    res.bench = benchFor(res.steps);
    res.bench.provenance = provenance;
    res.bench.oracle =
        runWitnessBench(golden_dut_src, res.bench, opts.simLimits);
    res.found = true;
    return res;
}

void
rehardenSnapshot(const RepairEngine &engine, EngineState &state)
{
    state.witnesses = engine.config().witnessBenches;
    // Every cached fitness was scored under the old oracle — drop the
    // entries (the stats remain as history; future lookups just miss).
    state.cache.clear();
    // Re-score the population under the hardened oracle. Counter- and
    // cache-free by design (evaluateUncached), so the snapshot's
    // counters still describe exactly the work the original run did.
    double best = -1.0;
    for (Variant &v : state.population) {
        v = engine.evaluateUncached(v.patch);
        best = std::max(best, v.fit.fitness);
    }
    // bestSeen restarts at the hardened population's honest maximum:
    // the demoted patch no longer holds the high-water mark, so the
    // resumed trajectory records genuine progress under the new oracle.
    if (!state.population.empty())
        state.bestSeen = best;
}

HardenedRepairResult
hardenedRepair(const Scenario &scenario, const EngineConfig &config,
               const WitnessOptions &opts)
{
    HardenedRepairResult out;
    EngineConfig cfg = config;
    cfg.snapshotOnWin = !cfg.snapshotPath.empty();
    bool have_snapshot = false;
    const std::string &dut = scenario.project->dutModule;

    while (true) {
        ++out.rounds;
        RepairEngine engine = scenario.makeEngine(cfg);
        if (have_snapshot) {
            EngineState st = loadSnapshot(cfg.snapshotPath);
            rehardenSnapshot(engine, st);
            ++out.resumedFromSnapshot;
            out.result = engine.resume(st);
        } else {
            out.result = engine.run();
        }
        out.result.overfitKills = out.overfitKills;
        if (!out.result.found)
            break;
        out.correct =
            checkCorrectness(scenario, out.result.patch, cfg.simLimits);
        if (out.correct)
            break;
        if (out.overfitKills >= opts.maxRounds)
            break;  // hardening budget exhausted: plausible-only

        // The winner overfits: hunt for a stimulus that separates it
        // from the golden design. A fresh deterministic RNG stream per
        // round keeps the whole loop a pure function of (seed, design).
        WitnessOptions wo = opts;
        wo.seed = opts.seed + static_cast<uint64_t>(out.overfitKills);
        std::string tb_name =
            "__cirfix_witness" + std::to_string(out.witnesses.size());
        std::string prov =
            (scenario.defect ? scenario.defect->id
                             : scenario.project->name) +
            ": hardening round " + std::to_string(out.rounds) +
            " against an overfit patch with " +
            std::to_string(out.result.patch.edits.size()) + " edit(s)";
        WitnessSearchResult ws =
            findWitness(scenario.project->goldenSource,
                        patchedDutSource(scenario, out.result.patch),
                        dut, wo, tb_name, prov);
        out.witnessTries += ws.tries;
        if (!ws.found)
            break;  // no discriminating stimulus: report as-is

        ++out.overfitKills;
        out.witnesses.push_back(ws.bench);
        cfg.witnessBenches.push_back(ws.bench);
        have_snapshot = cfg.snapshotOnWin;
    }
    out.result.witnessBenches =
        static_cast<int>(cfg.witnessBenches.size());
    out.result.overfitKills = out.overfitKills;
    return out;
}

} // namespace cirfix::core
