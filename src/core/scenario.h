#pragma once

/**
 * @file
 * Defect scenarios (paper Section 4.1).
 *
 * A defect scenario bundles everything one repair trial needs: a
 * circuit design with an expert-transplanted defect, an instrumented
 * testbench, and expected-behavior information recorded from the
 * previously-functioning (golden) version of the design. This module
 * provides the machinery; the concrete 11 projects / 32 defects live
 * in src/benchmarks.
 *
 * Correctness assessment: the paper manually inspects plausible
 * patches and classifies them as correct or merely testbench-adequate
 * (overfitting). We mechanize that with a held-out verification
 * testbench per project: a plausible patch is "correct" iff the
 * patched design also matches golden behavior under stimuli the
 * repair search never saw.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sim/probe.h"

namespace cirfix::core {

/** How the paper's Table 3 reports a defect (for comparison). */
enum class PaperOutcome { Correct, PlausibleOnly, NoRepair };

const char *paperOutcomeName(PaperOutcome o);

/** A benchmark hardware project (paper Table 2 row). */
struct ProjectSpec
{
    std::string name;
    std::string description;
    std::string goldenSource;     //!< correct DUT module(s)
    std::string testbenchSource;  //!< repair testbench
    std::string verifySource;     //!< held-out verification testbench
    std::string dutModule;        //!< module under repair
    std::string tbModule;         //!< testbench top module
    std::string verifyModule;     //!< verification top module

    int projectLoc() const;
    int testbenchLoc() const;
};

/** One textual defect transplant over the golden source. */
struct Rewrite
{
    std::string from;  //!< unique substring of the golden source
    std::string to;    //!< replacement implementing the defect
};

/** A defect scenario (paper Table 3 row). */
struct DefectSpec
{
    std::string id;           //!< e.g. "counter_missing_reset"
    std::string project;      //!< ProjectSpec::name
    std::string description;  //!< Table 3 defect description
    int category = 1;         //!< 1 = easy, 2 = hard
    std::vector<Rewrite> rewrites;
    PaperOutcome paperOutcome = PaperOutcome::Correct;
    double paperTimeSeconds = -1.0;  //!< Table 3 repair time (-1: none)
    /** Module the defect lives in; empty = the project's dutModule. */
    std::string repairModule;
};

/** Apply @p rewrites to @p source; throws if a pattern is missing. */
std::string applyRewrites(const std::string &source,
                          const std::vector<Rewrite> &rewrites);

/** A scenario assembled and ready to repair. */
struct Scenario
{
    const ProjectSpec *project = nullptr;
    const DefectSpec *defect = nullptr;

    /** Faulty DUT + repair testbench, parsed and numbered. */
    std::shared_ptr<const verilog::SourceFile> faulty;
    sim::ProbeConfig probe;
    Trace oracle;  //!< golden behavior under the repair testbench

    /** Held-out data for the correctness check. */
    std::string verifySource;
    std::string verifyModule;
    sim::ProbeConfig verifyProbe;
    Trace verifyOracle;

    /** Build a repair engine for this scenario. */
    RepairEngine makeEngine(const EngineConfig &config) const;

    /**
     * The defect must change externally visible behavior (Section
     * 4.1.3): fitness of the unpatched design against the oracle.
     */
    FitnessResult baselineFitness(const EngineConfig &config) const;
};

/**
 * Assemble a scenario: transplant the defect, record the oracle from
 * the golden design, derive probe configurations.
 *
 * @param limits Simulation bounds used when recording the oracles.
 */
Scenario buildScenario(const ProjectSpec &project,
                       const DefectSpec &defect,
                       const sim::RunLimits &limits = {});

/**
 * Assemble a scenario around an arbitrary faulty DUT source instead of
 * a registered defect transplant (Scenario::defect stays null). This is
 * the entry point for `cirfix witness` and the hardening tests, where
 * the "faulty" design is whatever the caller provides — e.g. a patched
 * design suspected of overfitting.
 */
Scenario buildScenarioFromSources(const ProjectSpec &project,
                                  const std::string &faulty_dut_src,
                                  const sim::RunLimits &limits = {});

/**
 * Apply @p patch to the scenario's faulty design and print only the
 * DUT module(s) — every module not defined by the repair testbench.
 * This is the design text witness generation discriminates against.
 */
std::string patchedDutSource(const Scenario &scenario,
                             const Patch &patch);

/**
 * Simulate the golden project under its repair testbench and return
 * the recorded oracle trace (also used to sanity-check projects).
 */
Trace recordGoldenTrace(const ProjectSpec &project, bool verify_bench,
                        const sim::RunLimits &limits = {});

/**
 * Correctness check for a plausible patch: re-simulate the patched
 * DUT under the held-out verification testbench and compare against
 * golden behavior. True means the repair generalizes ("correct"),
 * false means it overfits the repair testbench ("plausible only").
 */
bool checkCorrectness(const Scenario &scenario, const Patch &patch,
                      const sim::RunLimits &limits = {});

} // namespace cirfix::core
