#pragma once

/**
 * @file
 * Dataflow-based fault localization for HDL (paper Section 3.1,
 * Algorithm 2).
 *
 * Spectrum-based fault localization assumes serial execution and does
 * not transfer to parallel hardware descriptions, so CirFix implicates
 * code through a context-insensitive fixed-point analysis of
 * assignments:
 *
 *   1. Compare the simulation output against the expected behavior;
 *      output wires/registers with any mismatched value seed the
 *      mismatch set.
 *   2. Repeat until no new names appear:
 *        - (Impl-Data)  an assignment whose target is in the mismatch
 *          set is implicated;
 *        - (Impl-Ctrl)  a conditional whose controlling expression
 *          mentions a name in the mismatch set is implicated;
 *        - (Add-Child)  every implicated node and its descendants join
 *          the fault localization set, and every identifier beneath an
 *          implicated node joins the mismatch set.
 *
 * The result is a uniformly-ranked set of AST node ids: due to the
 * parallel structure of HDL designs, implicated assignments are
 * treated as equally likely to contribute to the defect.
 */

#include <string>
#include <unordered_set>

#include "sim/trace.h"
#include "verilog/ast.h"

namespace cirfix::core {

using sim::Trace;

struct FaultLocResult
{
    /** Implicated AST node ids (the FL set of Algorithm 2). */
    std::unordered_set<int> nodeIds;
    /** Final mismatch set of identifier names. */
    std::unordered_set<std::string> mismatchNames;
    /** Number of fixed-point iterations taken. */
    int iterations = 0;

    bool contains(int id) const { return nodeIds.count(id) > 0; }
};

/**
 * Compare @p sim_result with @p expected and return the set of
 * mismatched variable names (get_output_mismatch of Algorithm 2).
 * Hierarchical prefixes ("dut.") are stripped so names match the
 * identifiers of the DUT module.
 */
std::unordered_set<std::string>
outputMismatch(const Trace &sim_result, const Trace &expected);

/**
 * Run Algorithm 2 on the DUT module.
 *
 * @param dut        The module under repair (its AST is scanned).
 * @param sim_result Instrumented-testbench output of this variant.
 * @param expected   The expected-behavior oracle.
 */
FaultLocResult faultLocalize(const verilog::Module &dut,
                             const Trace &sim_result,
                             const Trace &expected);

/**
 * Variant seeded with an explicit mismatch set (used by tests and by
 * callers that already computed the mismatch).
 */
FaultLocResult
faultLocalize(const verilog::Module &dut,
              std::unordered_set<std::string> mismatch_seed);

} // namespace cirfix::core
