#pragma once

/**
 * @file
 * Repair minimization via delta debugging (paper Section 3.7).
 *
 * The GP search can accrete edits that do not contribute to the repair
 * (repeated assignments, neutral deletions). minimizePatch() computes a
 * 1-minimal subset of the edit list — no single edit can be removed
 * without losing plausibility — using the ddmin algorithm, which runs
 * in polynomial time in the number of edits.
 */

#include <functional>

#include "core/patch.h"

namespace cirfix::core {

/**
 * Shrink @p patch to a 1-minimal edit subset.
 *
 * @param patch            The plausible repair patch.
 * @param still_plausible  Oracle: does this candidate subset still
 *                         achieve fitness 1.0? Must be true for
 *                         @p patch itself.
 * @param tests_out        Optional count of oracle invocations.
 */
Patch minimizePatch(const Patch &patch,
                    const std::function<bool(const Patch &)> &still_plausible,
                    int *tests_out = nullptr);

} // namespace cirfix::core
