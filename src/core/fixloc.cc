#include "core/fixloc.h"

namespace cirfix::core {

using namespace verilog;

namespace {

bool
isStmtKind(NodeKind k)
{
    switch (k) {
      case NodeKind::SeqBlock:
      case NodeKind::If:
      case NodeKind::Case:
      case NodeKind::For:
      case NodeKind::While:
      case NodeKind::Repeat:
      case NodeKind::Forever:
      case NodeKind::Assign:
      case NodeKind::DelayStmt:
      case NodeKind::EventCtrl:
      case NodeKind::Wait:
      case NodeKind::TriggerEvent:
      case NodeKind::SysTask:
      case NodeKind::NullStmt:
        return true;
      default:
        return false;
    }
}

void
collectSlotsIn(Stmt *s, bool in_block,
               std::vector<StmtSlotInfo> &out)
{
    if (!s)
        return;
    out.push_back({s->id, s->kind, in_block});
    switch (s->kind) {
      case NodeKind::SeqBlock:
        for (auto &child : s->as<SeqBlock>()->stmts)
            collectSlotsIn(child.get(), true, out);
        break;
      case NodeKind::If:
        collectSlotsIn(s->as<If>()->thenStmt.get(), false, out);
        collectSlotsIn(s->as<If>()->elseStmt.get(), false, out);
        break;
      case NodeKind::Case:
        for (auto &item : s->as<Case>()->items)
            collectSlotsIn(item.body.get(), false, out);
        break;
      case NodeKind::For:
        collectSlotsIn(s->as<For>()->body.get(), false, out);
        break;
      case NodeKind::While:
        collectSlotsIn(s->as<While>()->body.get(), false, out);
        break;
      case NodeKind::Repeat:
        collectSlotsIn(s->as<Repeat>()->body.get(), false, out);
        break;
      case NodeKind::Forever:
        collectSlotsIn(s->as<Forever>()->body.get(), false, out);
        break;
      case NodeKind::DelayStmt:
        collectSlotsIn(s->as<DelayStmt>()->stmt.get(), false, out);
        break;
      case NodeKind::EventCtrl:
        collectSlotsIn(s->as<EventCtrl>()->stmt.get(), false, out);
        break;
      case NodeKind::Wait:
        collectSlotsIn(s->as<Wait>()->stmt.get(), false, out);
        break;
      default:
        break;
    }
}

void
collectDonors(const Module &mod, std::vector<int> &out)
{
    for (auto &slot : collectStmtSlots(mod)) {
        // Whole always/initial bodies (event controls at the top) are
        // poor donors; keep everything else. Statement types per
        // Annex A.6.4 — SeqBlock, If, Case, loops, assignments, ...
        if (isStmtKind(slot.kind) && slot.kind != NodeKind::NullStmt)
            out.push_back(slot.id);
    }
}

} // namespace

std::vector<StmtSlotInfo>
collectStmtSlots(const Module &mod)
{
    std::vector<StmtSlotInfo> out;
    for (auto &item : mod.items) {
        if (item->kind == NodeKind::AlwaysBlock)
            collectSlotsIn(item->as<AlwaysBlock>()->body.get(), false,
                           out);
        else if (item->kind == NodeKind::InitialBlock)
            collectSlotsIn(item->as<InitialBlock>()->body.get(), false,
                           out);
    }
    return out;
}

FixLocSpace
computeFixLoc(const SourceFile &file, const Module &dut, bool enabled)
{
    FixLocSpace space;
    space.slots = collectStmtSlots(dut);
    if (enabled) {
        collectDonors(dut, space.donorIds);
    } else {
        // Ablation: donors from every module, testbench included.
        for (auto &m : file.modules)
            collectDonors(*m, space.donorIds);
    }
    return space;
}

bool
replacementCompatible(NodeKind target_kind, NodeKind donor_kind)
{
    if (target_kind == donor_kind)
        return true;
    return isStmtKind(target_kind) && isStmtKind(donor_kind);
}

} // namespace cirfix::core
