#include "core/templates.h"

#include <unordered_set>

namespace cirfix::core {

using namespace verilog;

const char *
templateName(TemplateKind k)
{
    switch (k) {
      case TemplateKind::NegateConditional: return "negate-conditional";
      case TemplateKind::SensitivityNegedge: return "sensitivity-negedge";
      case TemplateKind::SensitivityPosedge: return "sensitivity-posedge";
      case TemplateKind::SensitivityStar: return "sensitivity-star";
      case TemplateKind::SensitivityLevel: return "sensitivity-level";
      case TemplateKind::BlockingToNonblocking: return "blocking-to-nba";
      case TemplateKind::NonblockingToBlocking: return "nba-to-blocking";
      case TemplateKind::IncrementValue: return "increment-value";
      case TemplateKind::DecrementValue: return "decrement-value";
      case TemplateKind::ForceConditionalTrue: return "force-cond-true";
      case TemplateKind::ForceConditionalFalse:
        return "force-cond-false";
      case TemplateKind::SwapIfBranches: return "swap-if-branches";
    }
    return "?";
}

const std::vector<TemplateKind> &
allTemplates()
{
    static const std::vector<TemplateKind> kinds = {
        TemplateKind::NegateConditional,
        TemplateKind::SensitivityNegedge,
        TemplateKind::SensitivityPosedge,
        TemplateKind::SensitivityStar,
        TemplateKind::SensitivityLevel,
        TemplateKind::BlockingToNonblocking,
        TemplateKind::NonblockingToBlocking,
        TemplateKind::IncrementValue,
        TemplateKind::DecrementValue,
    };
    return kinds;
}

const std::vector<TemplateKind> &
allTemplatesExtended()
{
    static const std::vector<TemplateKind> kinds = [] {
        std::vector<TemplateKind> all = allTemplates();
        all.push_back(TemplateKind::ForceConditionalTrue);
        all.push_back(TemplateKind::ForceConditionalFalse);
        all.push_back(TemplateKind::SwapIfBranches);
        return all;
    }();
    return kinds;
}

namespace {

/** Give @p node (only) a fresh id from the file's counter. */
void
freshId(SourceFile &file, Node &node)
{
    node.id = file.nextId++;
}

/** True if any node of @p root's subtree has an id in @p fl. */
bool
subtreeInFl(Node &root, const std::unordered_set<int> &fl)
{
    bool hit = false;
    visitAll(root, [&](Node &n) { hit |= fl.count(n.id) > 0; });
    return hit;
}

/** The top-level event control of an always block body, if any. */
EventCtrl *
alwaysEventCtrl(AlwaysBlock &blk)
{
    if (blk.body && blk.body->kind == NodeKind::EventCtrl)
        return blk.body->as<EventCtrl>();
    return nullptr;
}

/** Deduplicated identifier names read anywhere under @p root. */
std::vector<std::string>
blockSignals(Node &root)
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    for (auto &n : collectIdents(root))
        if (seen.insert(n).second)
            out.push_back(n);
    return out;
}

} // namespace

std::vector<TemplateSite>
enumerateTemplateSites(const Module &mod,
                       const std::unordered_set<int> *fl_set,
                       bool extended)
{
    std::vector<TemplateSite> sites;
    auto in_fl = [&](int id) { return !fl_set || fl_set->count(id) > 0; };

    for (auto &item : const_cast<Module &>(mod).items) {
        if (item->kind == NodeKind::AlwaysBlock) {
            auto *blk = item->as<AlwaysBlock>();
            EventCtrl *ec = alwaysEventCtrl(*blk);
            if (!ec)
                continue;
            bool implicated =
                !fl_set || subtreeInFl(*blk, *fl_set);
            if (!implicated)
                continue;
            // Candidate trigger signals: anything the block reads plus
            // the module's ports (the clock is usually a port that the
            // block body itself never reads).
            std::vector<std::string> signals =
                ec->stmt ? blockSignals(*ec->stmt)
                         : std::vector<std::string>{};
            {
                std::unordered_set<std::string> seen(signals.begin(),
                                                     signals.end());
                for (auto &port : mod.ports)
                    if (seen.insert(port.name).second)
                        signals.push_back(port.name);
            }
            for (auto &sig : signals) {
                sites.push_back({TemplateKind::SensitivityNegedge,
                                 ec->id, sig});
                sites.push_back({TemplateKind::SensitivityPosedge,
                                 ec->id, sig});
                sites.push_back({TemplateKind::SensitivityLevel,
                                 ec->id, sig});
            }
            sites.push_back({TemplateKind::SensitivityStar, ec->id, ""});
        }
    }

    visitAll(const_cast<Module &>(mod), [&](Node &n) {
        switch (n.kind) {
          case NodeKind::If:
          case NodeKind::While:
            if (in_fl(n.id)) {
                sites.push_back(
                    {TemplateKind::NegateConditional, n.id, ""});
                if (extended) {
                    sites.push_back(
                        {TemplateKind::ForceConditionalTrue, n.id,
                         ""});
                    sites.push_back(
                        {TemplateKind::ForceConditionalFalse, n.id,
                         ""});
                    if (n.kind == NodeKind::If &&
                        n.as<If>()->elseStmt)
                        sites.push_back(
                            {TemplateKind::SwapIfBranches, n.id, ""});
                }
            }
            break;
          case NodeKind::Assign:
            if (in_fl(n.id)) {
                sites.push_back({n.as<Assign>()->blocking
                                     ? TemplateKind::BlockingToNonblocking
                                     : TemplateKind::NonblockingToBlocking,
                                 n.id, ""});
            }
            break;
          case NodeKind::Number:
            if (in_fl(n.id)) {
                sites.push_back({TemplateKind::IncrementValue, n.id, ""});
                sites.push_back({TemplateKind::DecrementValue, n.id, ""});
            }
            break;
          default:
            break;
        }
    });
    return sites;
}

bool
applyTemplate(SourceFile &file, TemplateKind kind, int target,
              const std::string &param)
{
    Node *node = findNode(file, target);
    if (!node)
        return false;

    switch (kind) {
      case TemplateKind::NegateConditional: {
        ExprPtr *cond = nullptr;
        if (node->kind == NodeKind::If)
            cond = &node->as<If>()->cond;
        else if (node->kind == NodeKind::While)
            cond = &node->as<While>()->cond;
        else
            return false;
        auto negated =
            std::make_unique<Unary>(UnaryOp::Not, std::move(*cond));
        freshId(file, *negated);
        *cond = std::move(negated);
        return true;
      }
      case TemplateKind::SensitivityNegedge:
      case TemplateKind::SensitivityPosedge:
      case TemplateKind::SensitivityLevel: {
        EventCtrl *ec = nullptr;
        if (node->kind == NodeKind::EventCtrl)
            ec = node->as<EventCtrl>();
        else if (node->kind == NodeKind::AlwaysBlock)
            ec = alwaysEventCtrl(*node->as<AlwaysBlock>());
        if (!ec || param.empty())
            return false;
        Edge edge = kind == TemplateKind::SensitivityNegedge ? Edge::Neg
                    : kind == TemplateKind::SensitivityPosedge
                        ? Edge::Pos
                        : Edge::Level;
        EventExpr ev;
        ev.edge = edge;
        auto id = std::make_unique<Ident>(param);
        freshId(file, *id);
        ev.signal = std::move(id);
        ec->star = false;
        ec->events.clear();
        ec->events.push_back(std::move(ev));
        return true;
      }
      case TemplateKind::SensitivityStar: {
        EventCtrl *ec = nullptr;
        if (node->kind == NodeKind::EventCtrl)
            ec = node->as<EventCtrl>();
        else if (node->kind == NodeKind::AlwaysBlock)
            ec = alwaysEventCtrl(*node->as<AlwaysBlock>());
        if (!ec)
            return false;
        ec->star = true;
        ec->events.clear();
        return true;
      }
      case TemplateKind::BlockingToNonblocking: {
        if (node->kind != NodeKind::Assign)
            return false;
        auto *a = node->as<Assign>();
        if (!a->blocking)
            return false;
        a->blocking = false;
        return true;
      }
      case TemplateKind::NonblockingToBlocking: {
        if (node->kind != NodeKind::Assign)
            return false;
        auto *a = node->as<Assign>();
        if (a->blocking)
            return false;
        a->blocking = true;
        return true;
      }
      case TemplateKind::ForceConditionalTrue:
      case TemplateKind::ForceConditionalFalse: {
        ExprPtr *cond = nullptr;
        if (node->kind == NodeKind::If)
            cond = &node->as<If>()->cond;
        else if (node->kind == NodeKind::While)
            cond = &node->as<While>()->cond;
        else
            return false;
        auto constant = std::make_unique<Number>(
            1, kind == TemplateKind::ForceConditionalTrue ? 1u : 0u,
            'b');
        freshId(file, *constant);
        *cond = std::move(constant);
        return true;
      }
      case TemplateKind::SwapIfBranches: {
        if (node->kind != NodeKind::If)
            return false;
        auto *i = node->as<If>();
        if (!i->elseStmt)
            return false;
        std::swap(i->thenStmt, i->elseStmt);
        return true;
      }
      case TemplateKind::IncrementValue:
      case TemplateKind::DecrementValue: {
        if (node->kind != NodeKind::Number)
            return false;
        auto *num = node->as<Number>();
        sim::LogicVec one(num->value.width(), uint64_t(1));
        num->value = kind == TemplateKind::IncrementValue
                         ? num->value.add(one)
                         : num->value.sub(one);
        return true;
      }
    }
    return false;
}

} // namespace cirfix::core
