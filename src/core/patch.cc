#include "core/patch.h"

#include <sstream>

#include "verilog/printer.h"

namespace cirfix::core {

using namespace verilog;

const char *
editKindName(EditKind k)
{
    switch (k) {
      case EditKind::Replace: return "replace";
      case EditKind::InsertAfter: return "insert-after";
      case EditKind::Delete: return "delete";
      case EditKind::Template: return "template";
    }
    return "?";
}

Edit::Edit(const Edit &o)
    : kind(o.kind), target(o.target),
      code(o.code ? o.code->cloneStmt() : nullptr), tmpl(o.tmpl),
      param(o.param)
{}

Edit &
Edit::operator=(const Edit &o)
{
    if (this != &o) {
        kind = o.kind;
        target = o.target;
        code = o.code ? o.code->cloneStmt() : nullptr;
        tmpl = o.tmpl;
        param = o.param;
    }
    return *this;
}

std::string
Edit::describe() const
{
    std::ostringstream os;
    if (kind == EditKind::Template) {
        os << "template[" << templateName(tmpl) << "]@" << target;
        if (!param.empty())
            os << "(" << param << ")";
    } else {
        os << editKindName(kind) << "@" << target;
    }
    return os.str();
}

std::string
Patch::describe() const
{
    std::ostringstream os;
    for (size_t i = 0; i < edits.size(); ++i) {
        if (i)
            os << "; ";
        os << edits[i].describe();
    }
    return os.str();
}

std::string
Edit::key() const
{
    // \x1f separates fields, \x1e terminates the edit; neither occurs
    // in printed Verilog, so the encoding is unambiguous.
    std::ostringstream os;
    os << static_cast<int>(kind) << '\x1f' << target << '\x1f';
    if (kind == EditKind::Template)
        os << static_cast<int>(tmpl) << '\x1f' << param;
    else if (code)
        os << printStmt(*code, 0);
    os << '\x1e';
    return os.str();
}

std::string
Patch::key() const
{
    std::string k;
    for (const Edit &e : edits)
        k += e.key();
    return k;
}

namespace {

/**
 * Visit every owned statement slot of a module, pre-order. The
 * callback receives the slot plus, when the slot is directly inside a
 * begin/end block, that block and the statement's index. Returning
 * true stops the walk (used after a mutation so the freshly inserted
 * code is not re-visited).
 */
using SlotFn = std::function<bool(StmtPtr &, SeqBlock *, size_t)>;

bool
walkSlot(StmtPtr &slot, SeqBlock *parent, size_t idx, const SlotFn &fn)
{
    if (!slot)
        return false;
    if (fn(slot, parent, idx))
        return true;
    switch (slot->kind) {
      case NodeKind::SeqBlock: {
        auto *blk = slot->as<SeqBlock>();
        for (size_t i = 0; i < blk->stmts.size(); ++i)
            if (walkSlot(blk->stmts[i], blk, i, fn))
                return true;
        return false;
      }
      case NodeKind::If: {
        auto *s = slot->as<If>();
        return walkSlot(s->thenStmt, nullptr, 0, fn) ||
               walkSlot(s->elseStmt, nullptr, 0, fn);
      }
      case NodeKind::Case: {
        auto *s = slot->as<Case>();
        for (auto &item : s->items)
            if (walkSlot(item.body, nullptr, 0, fn))
                return true;
        return false;
      }
      case NodeKind::For: {
        auto *s = slot->as<For>();
        return walkSlot(s->init, nullptr, 0, fn) ||
               walkSlot(s->step, nullptr, 0, fn) ||
               walkSlot(s->body, nullptr, 0, fn);
      }
      case NodeKind::While:
        return walkSlot(slot->as<While>()->body, nullptr, 0, fn);
      case NodeKind::Repeat:
        return walkSlot(slot->as<Repeat>()->body, nullptr, 0, fn);
      case NodeKind::Forever:
        return walkSlot(slot->as<Forever>()->body, nullptr, 0, fn);
      case NodeKind::DelayStmt:
        return walkSlot(slot->as<DelayStmt>()->stmt, nullptr, 0, fn);
      case NodeKind::EventCtrl:
        return walkSlot(slot->as<EventCtrl>()->stmt, nullptr, 0, fn);
      case NodeKind::Wait:
        return walkSlot(slot->as<Wait>()->stmt, nullptr, 0, fn);
      default:
        return false;
    }
}

bool
walkModuleSlots(Module &mod, const SlotFn &fn)
{
    for (auto &item : mod.items) {
        if (item->kind == NodeKind::AlwaysBlock) {
            if (walkSlot(item->as<AlwaysBlock>()->body, nullptr, 0, fn))
                return true;
        } else if (item->kind == NodeKind::InitialBlock) {
            if (walkSlot(item->as<InitialBlock>()->body, nullptr, 0, fn))
                return true;
        }
    }
    return false;
}

bool
walkFileSlots(SourceFile &file, const SlotFn &fn)
{
    for (auto &mod : file.modules)
        if (walkModuleSlots(*mod, fn))
            return true;
    return false;
}

} // namespace

bool
applyEdit(SourceFile &file, const Edit &edit)
{
    switch (edit.kind) {
      case EditKind::Replace: {
        if (!edit.code)
            return false;
        return walkFileSlots(file, [&](StmtPtr &slot, SeqBlock *,
                                       size_t) {
            if (slot->id != edit.target)
                return false;
            StmtPtr repl = edit.code->cloneStmt();
            numberSubtree(file, *repl);
            slot = std::move(repl);
            return true;
        });
      }
      case EditKind::Delete: {
        return walkFileSlots(file, [&](StmtPtr &slot, SeqBlock *,
                                       size_t) {
            if (slot->id != edit.target)
                return false;
            auto null_stmt = std::make_unique<NullStmt>();
            numberSubtree(file, *null_stmt);
            slot = std::move(null_stmt);
            return true;
        });
      }
      case EditKind::InsertAfter: {
        if (!edit.code)
            return false;
        return walkFileSlots(file, [&](StmtPtr &slot, SeqBlock *parent,
                                       size_t idx) {
            if (slot->id != edit.target || !parent)
                return false;
            StmtPtr ins = edit.code->cloneStmt();
            numberSubtree(file, *ins);
            parent->stmts.insert(
                parent->stmts.begin() + static_cast<long>(idx) + 1,
                std::move(ins));
            return true;
        });
      }
      case EditKind::Template:
        return applyTemplate(file, edit.tmpl, edit.target, edit.param);
    }
    return false;
}

std::unique_ptr<SourceFile>
applyPatch(const SourceFile &original, const Patch &patch,
           int *applied_out)
{
    auto file = original.cloneFile();
    int applied = 0;
    for (const Edit &e : patch.edits)
        applied += applyEdit(*file, e) ? 1 : 0;
    if (applied_out)
        *applied_out = applied;
    return file;
}

} // namespace cirfix::core
