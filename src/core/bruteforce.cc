#include "core/bruteforce.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "core/fixloc.h"
#include "core/templates.h"

namespace cirfix::core {

using namespace verilog;

BruteForceResult
bruteForceRepair(RepairEngine &engine, const SourceFile &faulty,
                 const std::string &dut_module, double max_seconds,
                 uint64_t seed)
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    BruteForceResult result;
    const Module *dut = faulty.findModule(dut_module);
    if (!dut)
        return result;

    std::mt19937_64 rng(seed);

    // Enumerate the uniform single-edit space: no fault localization,
    // so every site in the module is a candidate.
    std::vector<Patch> candidates;
    for (const TemplateSite &site :
         enumerateTemplateSites(*dut, nullptr)) {
        Patch p;
        Edit e;
        e.kind = EditKind::Template;
        e.tmpl = site.kind;
        e.target = site.target;
        e.param = site.param;
        p.edits.push_back(std::move(e));
        candidates.push_back(std::move(p));
    }
    std::vector<StmtSlotInfo> slots = collectStmtSlots(*dut);
    for (const StmtSlotInfo &slot : slots) {
        Patch p;
        Edit e;
        e.kind = EditKind::Delete;
        e.target = slot.id;
        p.edits.push_back(std::move(e));
        candidates.push_back(std::move(p));
    }
    // Replace/insert pairs: every (target, donor) combination.
    for (const StmtSlotInfo &target : slots) {
        for (const StmtSlotInfo &donor : slots) {
            if (donor.id == target.id)
                continue;
            Node *dn =
                findNode(const_cast<SourceFile &>(faulty), donor.id);
            if (!dn)
                continue;
            {
                Patch p;
                Edit e;
                e.kind = EditKind::Replace;
                e.target = target.id;
                e.code = static_cast<Stmt *>(dn)->cloneStmt();
                p.edits.push_back(std::move(e));
                candidates.push_back(std::move(p));
            }
            if (target.inBlock) {
                Patch p;
                Edit e;
                e.kind = EditKind::InsertAfter;
                e.target = target.id;
                e.code = static_cast<Stmt *>(dn)->cloneStmt();
                p.edits.push_back(std::move(e));
                candidates.push_back(std::move(p));
            }
        }
    }

    std::shuffle(candidates.begin(), candidates.end(), rng);

    for (const Patch &p : candidates) {
        if (elapsed() >= max_seconds)
            break;
        ++result.candidatesTried;
        Variant v = engine.evaluate(p);
        if (v.valid && v.fit.plausible()) {
            result.found = true;
            result.patch = p;
            break;
        }
    }
    result.seconds = elapsed();
    return result;
}

} // namespace cirfix::core
