#pragma once

/**
 * @file
 * Repair patches: GenProg-style edit lists over AST node ids.
 *
 * Each program variant in the CirFix population is stored not as a
 * whole tree but as a patch — a sequence of edits parameterized by the
 * unique node numbers of the tree they apply to (paper Section 3).
 * Applying a patch to a pristine clone of the original design is
 * deterministic: clones preserve node ids and inserted code is
 * numbered from SourceFile::nextId in application order, so the same
 * patch always produces the same tree (edits later in the list may
 * therefore reference nodes created by earlier edits).
 *
 * Edits whose target no longer exists (removed by an earlier edit)
 * are silently skipped, matching the tolerant patch semantics of
 * GenProg-family repair tools.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/templates.h"
#include "verilog/ast.h"

namespace cirfix::core {

enum class EditKind {
    Replace,      //!< replace statement @p target with a copy of code
    InsertAfter,  //!< insert a copy of code after statement @p target
    Delete,       //!< replace statement @p target with a null statement
    Template,     //!< apply a repair template at @p target
};

const char *editKindName(EditKind k);

struct Edit
{
    EditKind kind = EditKind::Delete;
    int target = -1;
    /** Donor statement for Replace/InsertAfter (owned prototype). */
    verilog::StmtPtr code;
    /** Template to apply for EditKind::Template. */
    TemplateKind tmpl = TemplateKind::NegateConditional;
    /** Template parameter (e.g., the sensitivity signal name). */
    std::string param;

    Edit() = default;
    Edit(const Edit &o);
    Edit &operator=(const Edit &o);
    Edit(Edit &&) = default;
    Edit &operator=(Edit &&) = default;

    /** One-line description ("replace(12)", "template[negate-cond]@4"). */
    std::string describe() const;

    /**
     * Canonical fingerprint of this edit: kind, target, and the full
     * payload (printed donor code, template kind, template parameter),
     * separated by control characters that cannot appear in printed
     * Verilog. Two edits have equal keys iff they apply identically.
     */
    std::string key() const;
};

struct Patch
{
    std::vector<Edit> edits;

    bool empty() const { return edits.empty(); }
    size_t size() const { return edits.size(); }

    /** Multi-line human-readable description. */
    std::string describe() const;

    /**
     * Canonical cache key: the concatenated Edit::key() sequence.
     * Patch application is deterministic (see file comment), so equal
     * keys imply identical patched trees and hence identical fitness —
     * the property the engine's fitness cache relies on. Unlike a
     * 64-bit digest, the key is exact: distinct edit lists can never
     * collide.
     */
    std::string key() const;
};

/**
 * Apply @p patch to a fresh clone of @p original.
 *
 * @param applied_out If non-null, receives the number of edits that
 *                    found their target (diagnostics).
 * @return The patched tree (never null; unapplicable edits skipped).
 */
std::unique_ptr<verilog::SourceFile>
applyPatch(const verilog::SourceFile &original, const Patch &patch,
           int *applied_out = nullptr);

/**
 * Apply a single edit in place. Returns false if the target id does
 * not exist (the edit is then a no-op).
 */
bool applyEdit(verilog::SourceFile &file, const Edit &edit);

} // namespace cirfix::core
