#pragma once

/**
 * @file
 * Repair templates (paper Section 3.3, Table 1).
 *
 * Nine pre-identified fix patterns covering the four defect categories
 * CirFix targets: incorrect conditionals, incorrect sensitivity lists,
 * incorrect blocking/non-blocking assignments, and numeric errors.
 * Three of the categories come from Sudakrishnan et al.'s study of
 * Verilog bug-fix histories; the numeric category is CirFix's own.
 */

#include <string>
#include <unordered_set>
#include <vector>

#include "verilog/ast.h"

namespace cirfix::core {

enum class TemplateKind {
    // Conditionals
    NegateConditional,       //!< negate an if/while condition
    // Sensitivity lists
    SensitivityNegedge,      //!< trigger always block on negedge <param>
    SensitivityPosedge,      //!< trigger always block on posedge <param>
    SensitivityStar,         //!< trigger on any change of block's vars
    SensitivityLevel,        //!< trigger when <param> changes (level)
    // Assignments
    BlockingToNonblocking,   //!< a = b  ->  a <= b
    NonblockingToBlocking,   //!< a <= b ->  a = b
    // Numeric
    IncrementValue,          //!< bump a numeric literal by 1
    DecrementValue,          //!< drop a numeric literal by 1

    // --- Extended set (paper Section 5.2: "adding more repair
    // templates can help in such cases"; opt-in, not part of the
    // paper's nine) ---
    ForceConditionalTrue,    //!< replace an if condition with 1'b1
    ForceConditionalFalse,   //!< replace an if condition with 1'b0
    SwapIfBranches,          //!< exchange then/else of an if
};

constexpr int kNumTemplates = 9;
constexpr int kNumExtendedTemplates = 12;

const char *templateName(TemplateKind k);

/** All nine template kinds, in Table 1 order. */
const std::vector<TemplateKind> &allTemplates();

/** The nine plus the three extended kinds. */
const std::vector<TemplateKind> &allTemplatesExtended();

/**
 * One concrete application site for a template: which node to edit
 * and (for sensitivity templates) which signal to use.
 */
struct TemplateSite
{
    TemplateKind kind;
    int target;         //!< node id the template applies to
    std::string param;  //!< sensitivity signal name ("" if unused)
};

/**
 * Enumerate every site where some template can apply, restricted to
 * nodes implicated by fault localization (pass nullptr to consider
 * every node of the module).
 */
std::vector<TemplateSite>
enumerateTemplateSites(const verilog::Module &mod,
                       const std::unordered_set<int> *fl_set,
                       bool extended = false);

/**
 * Apply a template in place.
 *
 * @return false if the target node is missing or the template does
 *         not apply to its kind (the caller treats this as a no-op).
 */
bool applyTemplate(verilog::SourceFile &file, TemplateKind kind,
                   int target, const std::string &param);

} // namespace cirfix::core
