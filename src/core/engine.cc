#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "core/island.h"
#include "core/snapshot.h"
#include "sim/elaborate.h"
#include "verilog/parser.h"
#include "verilog/printer.h"
#include "verilog/validate.h"

namespace cirfix::core {

using namespace verilog;
using sim::Design;
using sim::ProbeConfig;
using sim::TraceRecorder;

size_t
uniformIndex(std::mt19937_64 &rng, size_t n)
{
    return std::uniform_int_distribution<size_t>(0, n - 1)(rng);
}

/** Fold one evaluation's compiled-backend counters into a running
 *  total (merged in child order, like the outcome counts). */
static void
accumCompiled(sim::CompiledStats &into, const sim::CompiledStats &s)
{
    into.modulesCompiled += s.modulesCompiled;
    into.modulesFallback += s.modulesFallback;
    into.combItems += s.combItems;
    into.seqItems += s.seqItems;
    into.twoStateEvals += s.twoStateEvals;
    into.fourStateFallbacks += s.fourStateFallbacks;
}

RepairEngine::RepairEngine(std::shared_ptr<const SourceFile> faulty,
                           std::string tb_module, std::string dut_module,
                           ProbeConfig probe, Trace oracle,
                           EngineConfig config)
    : faulty_(std::move(faulty)), tbModule_(std::move(tb_module)),
      dutModule_(std::move(dut_module)), probe_(std::move(probe)),
      oracle_(std::move(oracle)), config_(config),
      oracleProfile_(OracleProfile::build(oracle_, config.fitness)),
      rng_(config.seed), cache_(config.fitnessCacheSize)
{
    // The pre-screen diffs every candidate against the *baseline*
    // design's lint fingerprint: only findings the mutation introduced
    // can reject, never warts the defective design already had.
    // Computed once here and immutable afterwards — worker threads
    // read it concurrently.
    if (config_.lintPrescreen)
        baselineLintFp_ = lint::fingerprint(
            lint::run(*faulty_, config_.lintOptions));

    // Witness benches: parse each generated testbench once and
    // precompute the score an absent trace earns against its oracle
    // (the worst case an early-aborted candidate is charged). Both are
    // immutable after construction — worker threads read them.
    witnessRt_.reserve(config_.witnessBenches.size());
    for (const OracleBench &b : config_.witnessBenches) {
        WitnessRuntime rt;
        rt.bench = &b;
        rt.file = std::shared_ptr<const SourceFile>(
            verilog::parse(b.source));
        rt.missing = evaluateFitness(Trace{}, b.oracle, config_.fitness);
        witnessTotal_ += rt.missing.total;
        witnessRt_.push_back(std::move(rt));
    }
}

EvalPool &
RepairEngine::pool()
{
    if (!pool_) {
        int n = config_.numThreads;
        if (n <= 0)
            n = static_cast<int>(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        pool_ = std::make_unique<EvalPool>(n);
    }
    return *pool_;
}

Variant
RepairEngine::evaluateUncached(const Patch &patch) const
{
    return evaluateUncached(patch, EvalHints{});
}

Variant
RepairEngine::evaluateUncached(const Patch &patch,
                               const EvalHints &hints) const
{
    using SimStatus = sim::Scheduler::Status;

    Variant v;
    v.patch = patch;
    v.evaluated = true;

    std::shared_ptr<SourceFile> patched =
        applyPatch(*faulty_, patch);
    if (!isValid(*patched)) {
        v.valid = false;  // "compile error": fitness stays 0
        v.outcome = EvalOutcome::ParseFail;
        v.error = "patch failed structural validation";
        return v;
    }
    v.valid = true;

    if (config_.lintPrescreen) {
        lint::Result lr = lint::run(*patched, config_.lintOptions);
        std::string msg;
        if (lint::newErrorCount(baselineLintFp_, lr, &msg) > 0) {
            // A new error-severity finding the baseline did not have:
            // the mutation manufactured something doomed (a zero-delay
            // loop, a second driver on a net). Worst fitness, no
            // simulation.
            v.valid = false;
            v.outcome = EvalOutcome::LintReject;
            v.error = msg;
            return v;
        }
    }

    // Total containment: no failure mode of a candidate may escape
    // this function. Every escape hatch degrades to a worst-fitness
    // Variant tagged with its EvalOutcome.
    std::unique_ptr<sim::Design> design;
    try {
        sim::SimGuards guards;
        guards.memBudgetBytes = config_.evalMemoryBudget;
        guards.faultPlan = config_.faultPlan;
        guards.backend = config_.backend;
        design = sim::elaborate(
            std::shared_ptr<const SourceFile>(patched), tbModule_,
            guards);
        v.compiled = design->compiledStats();
        TraceRecorder rec(*design, probe_);
        std::optional<StreamingFitness> scorer;
        if (hints.streaming) {
            scorer.emplace(oracle_, probe_.signals, config_.fitness,
                           &oracleProfile_);
            // With witness benches installed the survival threshold is
            // a COMBINED fitness, but the streaming scorer only bounds
            // the main bench. combined_ub <= (main_ub*Tm + Tw)/(Tm+Tw)
            // (every witness bit assumed to match), so aborting when
            // main_ub < (cutoff*(Tm+Tw) - Tw)/Tm is sound: even a
            // perfect witness score could not lift the candidate back
            // to the cutoff.
            double cutoff = hints.abortThreshold;
            if (witnessTotal_ > 0 && std::isfinite(cutoff)) {
                const double tm = oracleProfile_.suffixWeight.empty()
                                      ? 0.0
                                      : oracleProfile_.suffixWeight[0];
                cutoff = tm > 0
                             ? (cutoff * (tm + witnessTotal_) -
                                witnessTotal_) /
                                   tm
                             : -std::numeric_limits<double>::infinity();
            }
            rec.setSampleCallback(
                [&scorer, cutoff](sim::SimTime t,
                                  const std::vector<sim::LogicVec>
                                      &values) {
                    scorer->onSample(t, values);
                    // Strictly below: a candidate that can still TIE
                    // the survival threshold must finish (ties can
                    // survive the truncation merge).
                    return scorer->upperBound() < cutoff
                               ? TraceRecorder::SampleAction::Stop
                               : TraceRecorder::SampleAction::Continue;
                });
        }
        sim::RunLimits limits = config_.simLimits;
        if (limits.maxWallSeconds <= 0)
            limits.maxWallSeconds = config_.evalDeadlineSeconds;
        auto rr = design->run(limits);
        v.compiled = design->compiledStats();
        switch (rr.status) {
          case SimStatus::Runaway:
            v.outcome = EvalOutcome::Runaway;
            break;
          case SimStatus::Deadline:
            v.outcome = EvalOutcome::Deadline;
            break;
          case SimStatus::Crashed:
            v.outcome = EvalOutcome::Crashed;
            break;
          case SimStatus::EarlyStop:
            v.outcome = EvalOutcome::EarlyAbort;
            break;
          default:
            break;  // Finished / Idle / MaxTime: a real result
        }
        if (v.outcome == EvalOutcome::Ok) {
            v.trace = rec.takeTrace();
            if (scorer) {
                v.fit = scorer->finish();
                v.rowsScored = scorer->rowsReached();
            } else {
                v.fit =
                    evaluateFitness(v.trace, oracle_, config_.fitness);
            }
            if (!witnessRt_.empty())
                scoreWitnessBenches(*patched, v);
        } else if (v.outcome == EvalOutcome::EarlyAbort) {
            // A deliberate cutoff, not a failure: the candidate stays
            // valid and keeps its partial score (remaining oracle rows
            // read as missing, exactly as a short trace would in the
            // batch path). The partial fitness is <= the upper bound
            // that triggered the stop, so the candidate cannot survive
            // selection, win the trial, or advance the trajectory.
            v.trace = rec.takeTrace();
            v.fit = scorer->finish();
            v.rowsScored = scorer->rowsReached();
            v.error = design->scheduler().abortReason();
            // Witness benches are never simulated for an aborted
            // candidate; their rows read as missing (worst case), which
            // keeps the combined score under the upper bound that
            // triggered the stop.
            for (const WitnessRuntime &w : witnessRt_)
                v.fit = combineFitness(v.fit, w.missing);
        } else {
            v.valid = false;
            v.error = design->scheduler().abortReason();
        }
    } catch (const sim::ElabError &e) {
        v.valid = false;
        v.outcome = EvalOutcome::ElabFail;
        v.error = e.what();
    } catch (const sim::SimOom &e) {
        v.valid = false;
        v.outcome = EvalOutcome::Oom;
        v.error = e.what();
    } catch (const sim::SimAbort &e) {
        // A budget/deadline abort thrown outside a process (continuous
        // assignment or function evaluation) unwinds through run();
        // the scheduler's latch knows which kind fired first. On
        // elab-throw paths no Design (and no latch) exists yet, so
        // classify by the cause carried on the exception instead of
        // defaulting to Runaway.
        v.valid = false;
        bool deadline =
            design && design->scheduler().aborted()
                ? design->scheduler().abortStatus() ==
                      SimStatus::Deadline
                : e.cause == sim::SimAbort::Cause::Deadline;
        v.outcome = deadline ? EvalOutcome::Deadline
                             : EvalOutcome::Runaway;
        v.error = e.what();
    } catch (const std::exception &e) {
        v.valid = false;
        v.outcome = EvalOutcome::Crashed;
        v.error = e.what();
    } catch (...) {
        v.valid = false;
        v.outcome = EvalOutcome::Crashed;
        v.error = "unknown exception";
    }
    return v;
}

bool
RepairEngine::scoreWitnessBenches(const SourceFile &patched,
                                  Variant &v) const
{
    using SimStatus = sim::Scheduler::Status;

    for (const WitnessRuntime &w : witnessRt_) {
        // Pair the patched DUT modules with the witness testbench in a
        // fresh file. Node ids are irrelevant here: the combined file
        // is only elaborated, never mutated.
        auto combined = std::make_shared<SourceFile>();
        for (const auto &m : patched.modules)
            if (!w.file->findModule(m->name))
                combined->modules.push_back(m->cloneModule());
        for (const auto &m : w.file->modules)
            combined->modules.push_back(m->cloneModule());

        sim::SimGuards guards;
        guards.memBudgetBytes = config_.evalMemoryBudget;
        guards.faultPlan = config_.faultPlan;
        auto design = sim::elaborate(
            std::shared_ptr<const SourceFile>(std::move(combined)),
            w.bench->module, guards);
        TraceRecorder rec(*design, w.bench->probe);
        sim::RunLimits limits = config_.simLimits;
        if (limits.maxWallSeconds <= 0)
            limits.maxWallSeconds = config_.evalDeadlineSeconds;
        auto rr = design->run(limits);
        switch (rr.status) {
          case SimStatus::Runaway:
            v.outcome = EvalOutcome::Runaway;
            break;
          case SimStatus::Deadline:
            v.outcome = EvalOutcome::Deadline;
            break;
          case SimStatus::Crashed:
            v.outcome = EvalOutcome::Crashed;
            break;
          default:
            break;  // Finished / Idle / MaxTime: a real result
        }
        if (v.outcome != EvalOutcome::Ok) {
            v.valid = false;
            v.error = "witness bench '" + w.bench->module +
                      "': " + design->scheduler().abortReason();
            return false;
        }
        v.fit = combineFitness(
            v.fit, evaluateFitness(rec.takeTrace(), w.bench->oracle,
                                   config_.fitness));
    }
    return true;
}

Variant
RepairEngine::quarantinedVariant(const Patch &patch,
                                 const QuarantineEntry &entry) const
{
    Variant v;
    v.patch = patch;
    v.evaluated = true;
    v.valid = false;  // worst fitness, no simulation
    v.outcome = entry.outcome;
    v.error = entry.error;
    return v;
}

Variant
RepairEngine::evaluate(const Patch &patch)
{
    std::string key = patch.key();
    auto q = quarantine_.find(key);
    if (q != quarantine_.end()) {
        ++outcomes_.quarantineHits;
        return quarantinedVariant(patch, q->second);
    }
    if (const FitnessCache::Entry *hit = cache_.find(key)) {
        Variant v;
        v.patch = patch;
        v.evaluated = true;
        v.valid = hit->valid;
        v.fit = hit->fit;
        v.trace = hit->trace;
        v.outcome = hit->outcome;
        v.error = hit->error;
        return v;
    }
    Variant v = evaluateUncached(patch);
    if (v.valid)
        ++evals_;
    outcomes_.add(v.outcome);
    accumCompiled(compiledStats_, v.compiled);
    if (v.outcome == EvalOutcome::LintReject)
        // Never cached or quarantined: the decision is a pure function
        // of the patch and recomputing it is cheaper than a cache slot.
        ++lintRejects_;
    else if (isQuarantineOutcome(v.outcome))
        quarantine_.emplace(key, QuarantineEntry{v.outcome, v.error});
    else
        cache_.insert(key, FitnessCache::Entry{v.valid, v.fit, v.trace,
                                               v.outcome, v.error});
    return v;
}

std::vector<Variant>
RepairEngine::evaluateBatch(const std::vector<Patch> &patches,
                            std::vector<bool> &simulated_out,
                            const std::vector<double> *elite_fitness)
{
    const size_t n = patches.size();
    enum class Source {
        Fresh,
        Cached,
        Duplicate,
        Quarantined,
        FleetCached,       //!< scored elsewhere in the fleet
        FleetQuarantined,  //!< condemned elsewhere in the fleet
    };
    std::vector<Variant> out(n);
    std::vector<std::string> keys(n);
    std::vector<Source> source(n, Source::Fresh);
    std::vector<size_t> dup_of(n, 0);
    std::unordered_map<std::string, size_t> first_occurrence;
    std::vector<size_t> fresh;  //!< child indices that must simulate

    // Early-abort survival tracker, seeded with the merge-pool members
    // already decided (the elites) and fed every resolved child in
    // child order. Any snapshot of its threshold is a lower bound on
    // the generation's final survival cutoff, so aborting strictly
    // below it is sound (see DESIGN.md).
    const bool abort_armed = elite_fitness && config_.earlyAbort;
    SurvivalTracker tracker(static_cast<size_t>(config_.popSize));
    if (abort_armed)
        for (double f : *elite_fitness)
            tracker.submit(f);

    // Quarantine + cache lookups and in-batch dedup in child order, on
    // this thread (so all accounting and LRU order are
    // schedule-independent). Quarantine wins over everything: a
    // condemned key must never reach a worker again.
    for (size_t i = 0; i < n; ++i) {
        keys[i] = patches[i].key();
        auto q = quarantine_.find(keys[i]);
        if (q != quarantine_.end()) {
            source[i] = Source::Quarantined;
            ++outcomes_.quarantineHits;
            out[i] = quarantinedVariant(patches[i], q->second);
            if (abort_armed)
                tracker.submit(out[i].fit.fitness);
            continue;
        }
        auto dup = first_occurrence.find(keys[i]);
        if (dup != first_occurrence.end()) {
            source[i] = Source::Duplicate;
            dup_of[i] = dup->second;
            cache_.noteDuplicateHit();
            // Duplicates resolve after simulation; not submitting them
            // keeps the threshold conservative (sound, merely fewer
            // aborts).
            continue;
        }
        if (const FitnessCache::Entry *hit = cache_.find(keys[i])) {
            source[i] = Source::Cached;
            out[i].patch = patches[i];
            out[i].evaluated = true;
            out[i].valid = hit->valid;
            out[i].fit = hit->fit;
            out[i].trace = hit->trace;
            out[i].outcome = hit->outcome;
            out[i].error = hit->error;
            if (abort_armed)
                tracker.submit(out[i].fit.fitness);
            continue;
        }
        first_occurrence.emplace(keys[i], i);
        fresh.push_back(i);
    }

    // Consult the fleet-shared cache once for everything the local
    // cache missed. A fleet hit carries an exact score (aborted
    // evaluations are never published), so substituting it for a fresh
    // simulation cannot change any search decision — only how much
    // work this island performs. Hits are adopted into the local cache
    // during the ordered merge below, exactly where a fresh result
    // would have landed.
    if (config_.fleetLookup && !fresh.empty()) {
        std::vector<std::string> ask;
        ask.reserve(fresh.size());
        for (size_t i : fresh)
            ask.push_back(keys[i]);
        std::unordered_map<std::string, FitnessCache::Entry> hits;
        std::unordered_map<std::string, QuarantineEntry> condemned;
        config_.fleetLookup(ask, &hits, &condemned);
        std::vector<size_t> still;
        still.reserve(fresh.size());
        for (size_t i : fresh) {
            if (auto q = condemned.find(keys[i]); q != condemned.end()) {
                source[i] = Source::FleetQuarantined;
                out[i] = quarantinedVariant(patches[i], q->second);
                if (abort_armed)
                    tracker.submit(out[i].fit.fitness);
                continue;
            }
            if (auto h = hits.find(keys[i]); h != hits.end()) {
                source[i] = Source::FleetCached;
                out[i].patch = patches[i];
                out[i].evaluated = true;
                out[i].valid = h->second.valid;
                out[i].fit = h->second.fit;
                out[i].trace = h->second.trace;
                out[i].outcome = h->second.outcome;
                out[i].error = h->second.error;
                if (abort_armed)
                    tracker.submit(out[i].fit.fitness);
                continue;
            }
            still.push_back(i);
        }
        fresh = std::move(still);
    }

    // Fresh simulations run in fixed-size chunks. Each chunk's jobs
    // carry the threshold snapshotted at dispatch (by value), and the
    // tracker is updated only at chunk boundaries, in child order, on
    // this thread — so the aborted set depends on the seed alone, not
    // on the thread count or scheduling.
    constexpr size_t kAbortChunk = 16;
    for (size_t c = 0; c < fresh.size(); c += kAbortChunk) {
        const size_t end = std::min(fresh.size(), c + kAbortChunk);
        EvalHints hints;
        hints.streaming = true;
        if (abort_armed)
            hints.abortThreshold = tracker.threshold();
        std::vector<std::function<void()>> jobs;
        jobs.reserve(end - c);
        for (size_t j = c; j < end; ++j) {
            const size_t i = fresh[j];
            jobs.push_back([this, &patches, &out, i, hints] {
                out[i] = evaluateUncached(patches[i], hints);
            });
        }
        pool().run(jobs);
        if (abort_armed)
            for (size_t j = c; j < end; ++j)
                tracker.submit(out[fresh[j]].fit.fitness);
    }

    // Merge in child order; only this thread touches the cache, the
    // quarantine and the outcome counters.
    std::vector<std::pair<std::string, FitnessCache::Entry>> publish_scored;
    std::vector<std::pair<std::string, QuarantineEntry>> publish_condemned;
    simulated_out.assign(n, false);
    for (size_t i = 0; i < n; ++i) {
        switch (source[i]) {
          case Source::Fresh:
            simulated_out[i] = out[i].valid;
            outcomes_.add(out[i].outcome);
            accumCompiled(compiledStats_, out[i].compiled);
            if (out[i].valid) {
                rowsScored_ += out[i].rowsScored;
                rowsSkipped_ += oracle_.rows().size() -
                                std::min<size_t>(oracle_.rows().size(),
                                                 out[i].rowsScored);
            }
            if (out[i].outcome == EvalOutcome::EarlyAbort) {
                // Never cached: the partial score is only meaningful
                // against this generation's threshold. A later
                // encounter (possibly under a lower cutoff, or during
                // minimization) must re-simulate in full.
                ++earlyAborts_;
            } else if (out[i].outcome == EvalOutcome::LintReject) {
                // Never cached (pure function of the patch) and never
                // quarantined (the patch never simulated, so it earned
                // no pathology verdict).
                ++lintRejects_;
            } else if (isQuarantineOutcome(out[i].outcome)) {
                quarantine_.emplace(
                    keys[i],
                    QuarantineEntry{out[i].outcome, out[i].error});
                if (config_.fleetPublish)
                    publish_condemned.emplace_back(
                        keys[i],
                        QuarantineEntry{out[i].outcome, out[i].error});
            } else {
                FitnessCache::Entry entry{out[i].valid, out[i].fit,
                                          out[i].trace, out[i].outcome,
                                          out[i].error};
                cache_.insert(keys[i], entry);
                if (config_.fleetPublish)
                    publish_scored.emplace_back(keys[i], std::move(entry));
            }
            break;
          case Source::FleetCached:
            // An exact score computed by another island. Adopt it into
            // the local cache at the exact merge slot a fresh
            // simulation would have used, and account for it like a
            // simulated candidate — the search trajectory is identical
            // either way, only the work counters differ.
            simulated_out[i] = out[i].valid;
            outcomes_.add(out[i].outcome);
            ++fleetCacheHits_;
            cache_.insert(keys[i],
                          FitnessCache::Entry{out[i].valid, out[i].fit,
                                              out[i].trace, out[i].outcome,
                                              out[i].error});
            break;
          case Source::FleetQuarantined:
            ++fleetQuarantineHits_;
            quarantine_.emplace(
                keys[i],
                QuarantineEntry{out[i].outcome, out[i].error});
            break;
          case Source::Duplicate:
            out[i] = out[dup_of[i]];
            out[i].patch = patches[i];
            break;
          case Source::Cached:
          case Source::Quarantined:
            break;
        }
    }
    if (config_.fleetPublish &&
        (!publish_scored.empty() || !publish_condemned.empty()))
        config_.fleetPublish(publish_scored, publish_condemned);
    return out;
}

const Variant &
RepairEngine::tournament(const std::vector<Variant> &popn)
{
    const Variant *best = nullptr;
    for (int i = 0; i < config_.tournamentSize; ++i) {
        const Variant &cand = popn[uniformIndex(rng_, popn.size())];
        if (!best || cand.fit.fitness > best->fit.fitness)
            best = &cand;
    }
    return *best;
}

FaultLocResult
RepairEngine::localize(const Variant &v, const SourceFile &ast) const
{
    const Module *dut = ast.findModule(dutModule_);
    if (!dut)
        return FaultLocResult{};
    if (!v.evaluated || !v.valid)
        return faultLocalize(*dut, Trace{}, oracle_);
    return faultLocalize(*dut, v.trace, oracle_);
}

RepairResult
RepairEngine::run()
{
    return runInternal(nullptr);
}

RepairResult
RepairEngine::resume(const EngineState &state)
{
    uint64_t fp = fingerprintSource(print(*faulty_));
    if (state.designFingerprint != fp)
        throw std::runtime_error(
            "snapshot does not match this design "
            "(fingerprint mismatch: snapshot was taken against a "
            "different faulty source)");
    // The oracle the snapshot's fitness values were scored under must
    // be the oracle this engine will keep scoring under; otherwise the
    // restored population and cache are silently wrong. Hardening
    // migrates a snapshot to a new witness set with rehardenSnapshot()
    // (witness.h), which re-scores before resume.
    if (state.witnesses.size() != config_.witnessBenches.size())
        throw std::runtime_error(
            "snapshot witness benches do not match the engine "
            "configuration (got " +
            std::to_string(state.witnesses.size()) + ", engine has " +
            std::to_string(config_.witnessBenches.size()) +
            "); migrate the snapshot with rehardenSnapshot() first");
    for (size_t i = 0; i < state.witnesses.size(); ++i) {
        const OracleBench &a = state.witnesses[i];
        const OracleBench &b = config_.witnessBenches[i];
        if (a.module != b.module || a.source != b.source ||
            a.oracle.toCsv() != b.oracle.toCsv())
            throw std::runtime_error(
                "snapshot witness bench '" + a.module +
                "' differs from the engine configuration; migrate the "
                "snapshot with rehardenSnapshot() first");
    }
    // An island snapshot belongs to exactly one (island, K) slot: the
    // RNG stream and migrant ledger it carries are meaningless under
    // any other slot, so resuming it there would silently diverge.
    if (state.islandIndex != config_.islandIndex ||
        state.islandCount != config_.islandCount)
        throw std::runtime_error(
            "snapshot island provenance mismatch: snapshot was taken "
            "by island " + std::to_string(state.islandIndex) + " of " +
            std::to_string(state.islandCount) +
            ", but this engine is island " +
            std::to_string(config_.islandIndex) + " of " +
            std::to_string(config_.islandCount));
    return runInternal(&state);
}

EngineState
RepairEngine::captureState(
    int generations_done, const std::vector<Variant> &popn,
    double elapsed_seconds, double best_seen,
    const std::vector<std::pair<long, double>> &trajectory) const
{
    EngineState st;
    st.seed = config_.seed;
    st.designFingerprint = fingerprintSource(print(*faulty_));
    st.provenance = config_.snapshotProvenance;
    {
        std::ostringstream os;
        os << rng_;
        st.rngState = os.str();
    }
    st.generationsDone = generations_done;
    st.witnesses = config_.witnessBenches;
    st.evals = evals_;
    st.invalid = invalid_;
    st.mutants = mutants_;
    st.earlyAborts = earlyAborts_;
    st.rowsScored = rowsScored_;
    st.rowsSkipped = rowsSkipped_;
    st.lintRejects = lintRejects_;
    st.compiled = compiledStats_;
    st.elapsedSeconds = elapsed_seconds;
    st.bestSeen = best_seen;
    st.trajectory = trajectory;
    st.outcomes = outcomes_;
    st.population = popn;
    st.islandIndex = config_.islandIndex;
    st.islandCount = config_.islandCount;
    st.migrationEpoch = config_.migrationInterval > 0
                            ? generations_done / config_.migrationInterval
                            : 0;
    st.migrantLedger = migrantLedger_;
    for (const auto &[key, entry] : quarantine_)
        st.quarantine.push_back(QuarantineRecord{key, entry});
    std::sort(st.quarantine.begin(), st.quarantine.end(),
              [](const QuarantineRecord &a, const QuarantineRecord &b) {
                  return a.key < b.key;
              });
    st.cacheStats = cache_.stats();
    // LRU-first so restore re-insert()s in an order that reproduces
    // the live list (and therefore future evictions) exactly.
    const auto &lru = cache_.entries();
    for (auto it = lru.rbegin(); it != lru.rend(); ++it)
        st.cache.push_back(CacheRecord{it->first, it->second});
    return st;
}

RepairResult
RepairEngine::runInternal(const EngineState *restore)
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    if (restore)
        // Bill time consumed before the snapshot against maxSeconds,
        // as if the run had never stopped.
        start -= std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(restore->elapsedSeconds));
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    RepairResult result;
    Mutator mutator(rng_, config_.mutation);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    double best_seen = -1.0;
    auto note = [&](const Variant &v) {
        if (v.fit.fitness > best_seen) {
            best_seen = v.fit.fitness;
            result.fitnessTrajectory.emplace_back(evals_, best_seen);
        }
    };

    /**
     * Charge a batch of evaluated children against the engine
     * counters, append them to @p into, and record trajectory
     * improvements — all in child order, so the merged state is
     * bit-identical at any thread count. Returns the first plausible
     * child (if any), which ends the trial.
     */
    auto absorb = [&](std::vector<Variant> &vs,
                      const std::vector<bool> &simulated,
                      std::vector<Variant> &into) -> const Variant * {
        size_t winner = vs.size();
        size_t base = into.size();
        for (size_t i = 0; i < vs.size(); ++i) {
            ++mutants_;
            if (!vs[i].valid)
                ++invalid_;
            if (simulated[i])
                ++evals_;
            into.push_back(std::move(vs[i]));
            note(into.back());
            if (winner == vs.size() && into.back().fit.plausible())
                winner = base + i;
        }
        return winner == vs.size() ? nullptr : &into[winner];
    };

    std::vector<Variant> popn;
    int start_gen = 0;

    auto finish = [&](const Variant *winner) {
        result.fitnessEvals = evals_;
        result.invalidMutants = invalid_;
        result.totalMutants = mutants_;
        result.witnessBenches = static_cast<int>(witnessRt_.size());
        result.seconds = elapsed();
        if (winner) {
            result.found = true;
            // Discovery-point snapshot: capture the search state the
            // moment a plausible candidate appears, before minimization
            // perturbs the cache/counters. Hardened repair resumes from
            // here after extending the oracle with a witness, so even a
            // win before the first generation boundary stays resumable.
            if (config_.snapshotOnWin && !config_.snapshotPath.empty())
                saveSnapshot(config_.snapshotPath,
                             captureState(result.generations, popn,
                                          elapsed(), best_seen,
                                          result.fitnessTrajectory));
            // Post-process: minimize with delta debugging, then print.
            Patch minimized = minimizePatch(
                winner->patch,
                [&](const Patch &p) {
                    Variant t = evaluate(p);
                    return t.valid && t.fit.plausible();
                });
            result.patch = minimized;
            Variant final_v = evaluate(minimized);
            result.finalFitness = final_v.fit;
            auto repaired = applyPatch(*faulty_, minimized);
            result.repairedSource = print(*repaired);
            result.fitnessEvals = evals_;
            result.seconds = elapsed();
        }
        result.cache = cache_.stats();
        result.outcomes = outcomes_;
        result.earlyAborts = earlyAborts_;
        result.rowsScored = rowsScored_;
        result.rowsSkipped = rowsSkipped_;
        result.lintRejects = lintRejects_;
        result.compiled = compiledStats_;
        result.fleetCacheHits = fleetCacheHits_;
        result.fleetQuarantineHits = fleetQuarantineHits_;
        result.migrantLedger = migrantLedger_;
        return result;
    };

    if (restore) {
        // Rebuild the complete search state: the continuation is
        // bit-identical to a run that never stopped.
        {
            std::istringstream is(restore->rngState);
            is >> rng_;
            if (!is)
                throw std::runtime_error(
                    "corrupt snapshot: bad RNG state");
        }
        evals_ = restore->evals;
        invalid_ = restore->invalid;
        mutants_ = restore->mutants;
        earlyAborts_ = restore->earlyAborts;
        rowsScored_ = restore->rowsScored;
        rowsSkipped_ = restore->rowsSkipped;
        lintRejects_ = restore->lintRejects;
        compiledStats_ = restore->compiled;
        outcomes_ = restore->outcomes;
        best_seen = restore->bestSeen;
        result.fitnessTrajectory = restore->trajectory;
        result.generations = restore->generationsDone;
        quarantine_.clear();
        for (const QuarantineRecord &q : restore->quarantine)
            quarantine_.emplace(q.key, q.entry);
        cache_ = FitnessCache(config_.fitnessCacheSize);
        for (const CacheRecord &c : restore->cache)
            cache_.insert(c.key, c.entry);  // LRU-first, see snapshot.h
        cache_.setStats(restore->cacheStats);
        popn = restore->population;
        start_gen = restore->generationsDone;
        migrantLedger_ = restore->migrantLedger;
    } else {
        // seed_popn: the original plus single-mutation neighbours. The
        // original goes first (and alone): its trace seeds fault
        // localization for the neighbour draws.
        {
            std::vector<Patch> seed{Patch{}};
            std::vector<bool> simulated;
            auto vs = evaluateBatch(seed, simulated);
            if (const Variant *w = absorb(vs, simulated, popn))
                return finish(w);
        }
        auto ast0 = applyPatch(*faulty_, Patch{});
        const Module *dut0 = ast0->findModule(dutModule_);
        if (!dut0)
            return finish(nullptr);
        FaultLocResult fl0 =
            faultLocalize(*dut0, popn[0].trace, oracle_);
        std::vector<Patch> seeds;
        while (static_cast<int>(popn.size() + seeds.size()) <
                   config_.popSize &&
               elapsed() < config_.maxSeconds) {
            Patch p;
            std::optional<Edit> e =
                uniform(rng_) <= config_.rtThreshold
                    ? mutator.templateEdit(*ast0, *dut0, fl0.nodeIds)
                    : mutator.mutate(*ast0, *dut0, fl0.nodeIds);
            if (e)
                p.edits.push_back(std::move(*e));
            seeds.push_back(std::move(p));
        }
        std::vector<bool> simulated;
        auto vs = evaluateBatch(seeds, simulated);
        if (const Variant *w = absorb(vs, simulated, popn))
            return finish(w);
    }

    // Cache fault localization per parent AST once on the original if
    // re-localization is disabled (ablation). On resume popn[0] is no
    // longer the original, so recompute its trace off to the side
    // (evaluateUncached touches no counters/cache, keeping the resumed
    // state byte-identical).
    FaultLocResult static_fl;
    if (!config_.relocalize) {
        auto ast0 = applyPatch(*faulty_, Patch{});
        if (const Module *dut0 = ast0->findModule(dutModule_)) {
            if (!restore) {
                static_fl =
                    faultLocalize(*dut0, popn[0].trace, oracle_);
            } else {
                Variant orig = evaluateUncached(Patch{});
                static_fl = faultLocalize(*dut0, orig.trace, oracle_);
            }
        }
    }

    auto stopRequested = [&] {
        return config_.shouldStop && config_.shouldStop();
    };

    for (int gen = start_gen; gen < config_.maxGenerations; ++gen) {
        if (elapsed() >= config_.maxSeconds)
            break;
        if (stopRequested()) {
            result.stopped = true;
            break;
        }
        result.generations = gen + 1;

        // (a) Pre-draw every stochastic decision for the generation on
        // this thread: parent picks, operator choices, edit sites. The
        // RNG stream therefore never depends on evaluation scheduling.
        const int offspring = config_.offspringPerGen > 0
                                  ? config_.offspringPerGen
                                  : config_.popSize;
        std::vector<Patch> planned;
        int attempts = 0;
        const int max_attempts = offspring * 16 + 16;
        while (static_cast<int>(planned.size()) < offspring &&
               attempts++ < max_attempts) {
            if (elapsed() >= config_.maxSeconds || stopRequested())
                break;
            const Variant &parent = tournament(popn);
            auto parent_ast = applyPatch(*faulty_, parent.patch);
            const Module *dut = parent_ast->findModule(dutModule_);
            if (!dut)
                break;
            FaultLocResult fl =
                config_.relocalize ? localize(parent, *parent_ast)
                                   : static_fl;

            if (uniform(rng_) <= config_.rtThreshold) {
                // Repair templates.
                Patch p = parent.patch;
                if (auto e = mutator.templateEdit(*parent_ast, *dut,
                                                  fl.nodeIds)) {
                    p.edits.push_back(std::move(*e));
                    planned.push_back(std::move(p));
                }
            } else if (uniform(rng_) <= config_.mutThreshold) {
                // Mutation operators.
                Patch p = parent.patch;
                if (auto e =
                        mutator.mutate(*parent_ast, *dut, fl.nodeIds)) {
                    p.edits.push_back(std::move(*e));
                    planned.push_back(std::move(p));
                }
            } else {
                // Crossover with a second parent.
                const Variant &parent2 = tournament(popn);
                auto [c1, c2] =
                    crossover(parent.patch, parent2.patch, rng_);
                planned.push_back(std::move(c1));
                planned.push_back(std::move(c2));
            }
        }

        // A cancel inside the planning loop aborts before the batch is
        // simulated: the generation's work is discarded, so the cancel
        // takes effect mid-generation rather than after it.
        if (stopRequested()) {
            result.generations = gen;  // this generation never ran
            result.stopped = true;
            break;
        }

        // (b) Fan the children out to the pool, (c) merge in child
        // order. The elites' fitness values seed the early-abort
        // survival tracker: they are the only merge-pool members known
        // before the offspring evaluate, and they match what the merge
        // below will actually carry over.
        std::vector<double> elite_fitness;
        {
            elite_fitness.reserve(popn.size());
            for (const Variant &v : popn)
                elite_fitness.push_back(v.fit.fitness);
            std::sort(elite_fitness.begin(), elite_fitness.end(),
                      std::greater<double>());
            const size_t elites = static_cast<size_t>(std::max(
                1, static_cast<int>(config_.elitism *
                                    static_cast<double>(popn.size()))));
            if (elite_fitness.size() > elites)
                elite_fitness.resize(elites);
        }
        std::vector<bool> simulated;
        auto vs = evaluateBatch(planned, simulated, &elite_fitness);
        std::vector<Variant> children;
        if (const Variant *w = absorb(vs, simulated, children))
            return finish(w);

        // Elitism: keep the top e% of the previous generation.
        // Stable sorts here and below: the survivor ORDER (which
        // tournament indexes into) must be a function of the members'
        // input order and fitness alone, never of how the sort
        // algorithm permutes ties — that makes it provably independent
        // of score perturbations below the truncation cutoff (e.g. an
        // early-aborted candidate carrying a partial score in one run
        // and an exact fleet-shared score in another).
        std::stable_sort(popn.begin(), popn.end(),
                         [](const Variant &a, const Variant &b) {
                             return a.fit.fitness > b.fit.fitness;
                         });
        int elites = std::max(
            1, static_cast<int>(config_.elitism *
                                static_cast<double>(popn.size())));
        std::vector<Variant> next;
        for (int i = 0; i < elites &&
                        i < static_cast<int>(popn.size());
             ++i)
            next.push_back(std::move(popn[static_cast<size_t>(i)]));
        for (auto &c : children)
            next.push_back(std::move(c));
        std::stable_sort(next.begin(), next.end(),
                         [](const Variant &a, const Variant &b) {
                             return a.fit.fitness > b.fit.fitness;
                         });
        if (static_cast<int>(next.size()) > config_.popSize)
            next.resize(static_cast<size_t>(config_.popSize));
        popn = std::move(next);
        // Migration barrier: at each epoch boundary hand the truncated
        // population to the island coordinator and splice the returned
        // rank-ordered migrant set in, all before the boundary snapshot
        // below — a crash after the snapshot resumes with migrants
        // already injected and the ledger already appended, and a crash
        // before it re-runs the whole generation (same RNG stream, same
        // export, same injection). The hook may block on remote islands
        // but must not touch this engine's RNG.
        if (config_.migrationInterval > 0 && config_.onMigration &&
            (gen + 1) % config_.migrationInterval == 0) {
            const int epoch = (gen + 1) / config_.migrationInterval;
            std::vector<Variant> migrants =
                config_.onMigration(epoch, popn);
            if (stopRequested()) {
                // The hook came back under a stop (wind-down mid
                // barrier, or a winner sealed this epoch): do NOT
                // commit the boundary. Recording an empty injection
                // and snapshotting it would make a resumed run skip
                // this epoch's real migrant set and diverge; instead
                // the generation stays uncommitted and a resume
                // re-runs it — same RNG stream, same exchange
                // (submit is idempotent), real injection this time.
                result.generations = gen;
                result.stopped = true;
                break;
            }
            std::vector<std::string> imported =
                injectMigrants(&popn, migrants, config_.popSize);
            migrantLedger_.push_back(
                MigrantRecord{epoch, std::move(imported)});
        }
        // Snapshot BEFORE the progress callback: if the process dies
        // anywhere after this point (including inside the callback),
        // the generation is already durable.
        if (!config_.snapshotPath.empty() && config_.snapshotEvery > 0 &&
            (gen + 1) % config_.snapshotEvery == 0)
            saveSnapshot(config_.snapshotPath,
                         captureState(gen + 1, popn, elapsed(),
                                      best_seen,
                                      result.fitnessTrajectory));
        if (config_.onGeneration) {
            GenerationStats gs;
            gs.generation = gen + 1;
            gs.bestFitness = popn.empty() ? 0.0 : popn[0].fit.fitness;
            gs.fitnessEvals = evals_;
            gs.invalidMutants = invalid_;
            gs.totalMutants = mutants_;
            gs.outcomes = outcomes_;
            gs.cache = cache_.stats();
            gs.quarantined = quarantine_.size();
            gs.lintRejects = lintRejects_;
            gs.witnessBenches = static_cast<int>(witnessRt_.size());
            gs.compiled = compiledStats_;
            gs.elapsedSeconds = elapsed();
            gs.fleetCacheHits = fleetCacheHits_;
            gs.island = config_.islandIndex;
            gs.epoch = config_.migrationInterval > 0
                           ? (gen + 1) / config_.migrationInterval
                           : 0;
            config_.onGeneration(gs);
        }
    }

    return finish(nullptr);
}

} // namespace cirfix::core
