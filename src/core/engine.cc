#include "core/engine.h"

#include <algorithm>

#include "sim/elaborate.h"
#include "verilog/printer.h"
#include "verilog/validate.h"

namespace cirfix::core {

using namespace verilog;
using sim::Design;
using sim::ProbeConfig;
using sim::TraceRecorder;

RepairEngine::RepairEngine(std::shared_ptr<const SourceFile> faulty,
                           std::string tb_module, std::string dut_module,
                           ProbeConfig probe, Trace oracle,
                           EngineConfig config)
    : faulty_(std::move(faulty)), tbModule_(std::move(tb_module)),
      dutModule_(std::move(dut_module)), probe_(std::move(probe)),
      oracle_(std::move(oracle)), config_(config), rng_(config.seed)
{}

Variant
RepairEngine::evaluate(const Patch &patch)
{
    Variant v;
    v.patch = patch;
    v.evaluated = true;

    std::shared_ptr<SourceFile> patched =
        applyPatch(*faulty_, patch);
    if (!isValid(*patched)) {
        v.valid = false;  // "compile error": fitness stays 0
        return v;
    }
    v.valid = true;

    try {
        auto design = sim::elaborate(
            std::shared_ptr<const SourceFile>(patched), tbModule_);
        TraceRecorder rec(*design, probe_);
        design->run(config_.simLimits);
        ++evals_;
        v.trace = rec.takeTrace();
        v.fit = evaluateFitness(v.trace, oracle_, config_.fitness);
    } catch (const sim::ElabError &) {
        v.valid = false;
    }
    return v;
}

Variant
RepairEngine::makeChild(Patch patch)
{
    ++mutants_;
    Variant v = evaluate(patch);
    if (!v.valid)
        ++invalid_;
    return v;
}

const Variant &
RepairEngine::tournament(const std::vector<Variant> &popn)
{
    const Variant *best = nullptr;
    for (int i = 0; i < config_.tournamentSize; ++i) {
        const Variant &cand = popn[rng_() % popn.size()];
        if (!best || cand.fit.fitness > best->fit.fitness)
            best = &cand;
    }
    return *best;
}

FaultLocResult
RepairEngine::localize(const Variant &v, const SourceFile &ast) const
{
    const Module *dut = ast.findModule(dutModule_);
    if (!dut)
        return FaultLocResult{};
    if (!v.evaluated || !v.valid)
        return faultLocalize(*dut, Trace{}, oracle_);
    return faultLocalize(*dut, v.trace, oracle_);
}

RepairResult
RepairEngine::run()
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    RepairResult result;
    Mutator mutator(rng_, config_.mutation);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    double best_seen = -1.0;
    auto note = [&](const Variant &v) {
        if (v.fit.fitness > best_seen) {
            best_seen = v.fit.fitness;
            result.fitnessTrajectory.emplace_back(evals_, best_seen);
        }
    };

    auto finish = [&](const Variant *winner) {
        result.fitnessEvals = evals_;
        result.invalidMutants = invalid_;
        result.totalMutants = mutants_;
        result.seconds = elapsed();
        if (winner) {
            result.found = true;
            // Post-process: minimize with delta debugging, then print.
            Patch minimized = minimizePatch(
                winner->patch,
                [&](const Patch &p) {
                    Variant t = evaluate(p);
                    return t.valid && t.fit.plausible();
                });
            result.patch = minimized;
            Variant final_v = evaluate(minimized);
            result.finalFitness = final_v.fit;
            auto repaired = applyPatch(*faulty_, minimized);
            result.repairedSource = print(*repaired);
            result.fitnessEvals = evals_;
            result.seconds = elapsed();
        }
        return result;
    };

    // seed_popn: the original plus single-mutation neighbours.
    std::vector<Variant> popn;
    popn.push_back(makeChild(Patch{}));
    note(popn.back());
    if (popn.back().fit.plausible())
        return finish(&popn.back());
    {
        auto ast0 = applyPatch(*faulty_, Patch{});
        const Module *dut0 = ast0->findModule(dutModule_);
        if (!dut0)
            return finish(nullptr);
        FaultLocResult fl0 =
            faultLocalize(*dut0, popn[0].trace, oracle_);
        while (static_cast<int>(popn.size()) < config_.popSize &&
               elapsed() < config_.maxSeconds) {
            Patch p;
            std::optional<Edit> e =
                uniform(rng_) <= config_.rtThreshold
                    ? mutator.templateEdit(*ast0, *dut0, fl0.nodeIds)
                    : mutator.mutate(*ast0, *dut0, fl0.nodeIds);
            if (e)
                p.edits.push_back(std::move(*e));
            popn.push_back(makeChild(std::move(p)));
            note(popn.back());
            if (popn.back().fit.plausible())
                return finish(&popn.back());
        }
    }

    // Cache fault localization per parent AST once on the original if
    // re-localization is disabled (ablation).
    FaultLocResult static_fl;
    if (!config_.relocalize) {
        auto ast0 = applyPatch(*faulty_, Patch{});
        if (const Module *dut0 = ast0->findModule(dutModule_))
            static_fl = faultLocalize(*dut0, popn[0].trace, oracle_);
    }

    for (int gen = 0; gen < config_.maxGenerations; ++gen) {
        if (elapsed() >= config_.maxSeconds)
            break;
        result.generations = gen + 1;

        std::vector<Variant> children;
        while (static_cast<int>(children.size()) < config_.popSize) {
            if (elapsed() >= config_.maxSeconds)
                break;
            const Variant &parent = tournament(popn);
            auto parent_ast = applyPatch(*faulty_, parent.patch);
            const Module *dut = parent_ast->findModule(dutModule_);
            if (!dut)
                break;
            FaultLocResult fl =
                config_.relocalize ? localize(parent, *parent_ast)
                                   : static_fl;

            if (uniform(rng_) <= config_.rtThreshold) {
                // Repair templates.
                Patch p = parent.patch;
                if (auto e = mutator.templateEdit(*parent_ast, *dut,
                                                  fl.nodeIds)) {
                    p.edits.push_back(std::move(*e));
                    children.push_back(makeChild(std::move(p)));
                }
            } else if (uniform(rng_) <= config_.mutThreshold) {
                // Mutation operators.
                Patch p = parent.patch;
                if (auto e =
                        mutator.mutate(*parent_ast, *dut, fl.nodeIds)) {
                    p.edits.push_back(std::move(*e));
                    children.push_back(makeChild(std::move(p)));
                }
            } else {
                // Crossover with a second parent.
                const Variant &parent2 = tournament(popn);
                auto [c1, c2] =
                    crossover(parent.patch, parent2.patch, rng_);
                children.push_back(makeChild(std::move(c1)));
                note(children.back());
                if (children.back().fit.plausible())
                    return finish(&children.back());
                children.push_back(makeChild(std::move(c2)));
            }
            if (!children.empty()) {
                note(children.back());
                if (children.back().fit.plausible())
                    return finish(&children.back());
            }
        }

        // Elitism: keep the top e% of the previous generation.
        std::sort(popn.begin(), popn.end(),
                  [](const Variant &a, const Variant &b) {
                      return a.fit.fitness > b.fit.fitness;
                  });
        int elites = std::max(
            1, static_cast<int>(config_.elitism *
                                static_cast<double>(popn.size())));
        std::vector<Variant> next;
        for (int i = 0; i < elites &&
                        i < static_cast<int>(popn.size());
             ++i)
            next.push_back(std::move(popn[static_cast<size_t>(i)]));
        for (auto &c : children)
            next.push_back(std::move(c));
        std::sort(next.begin(), next.end(),
                  [](const Variant &a, const Variant &b) {
                      return a.fit.fitness > b.fit.fitness;
                  });
        if (static_cast<int>(next.size()) > config_.popSize)
            next.resize(static_cast<size_t>(config_.popSize));
        popn = std::move(next);
        if (config_.onGeneration)
            config_.onGeneration(gen + 1,
                                 popn.empty() ? 0.0
                                              : popn[0].fit.fitness,
                                 evals_);
    }

    return finish(nullptr);
}

} // namespace cirfix::core
