#pragma once

/**
 * @file
 * Crash-safe checkpoint/resume for repair runs.
 *
 * Every N generations the engine serializes its complete search state
 * to a versioned snapshot file; `cirfix_cli --resume <snapshot>`
 * continues the run bit-identically (same final patch, same fitness,
 * same counters), extending the determinism contract of DESIGN.md
 * "Parallel evaluation" across process death.
 *
 * The state captured is exactly what the generation loop depends on:
 * the RNG stream position (mt19937_64 serialized via its stream
 * operators), the population (patches serialized as printed donor
 * statements — applyPatch renumbers donors on application and
 * Edit::key() is the printed text, so print + reparse is exact), the
 * quarantine set, and the full fitness cache in LRU order (restored by
 * re-inserting LRU-first, so hit/miss/eviction behavior after resume
 * matches the uninterrupted run).
 *
 * Format: versioned line-oriented text ("CIRFIX-SNAPSHOT 2" magic),
 * length-prefixed blobs for strings that may contain newlines, and
 * hexfloat (%a) doubles so round-trips are bit-exact. The body is
 * sealed by a trailing "checksum" record (FNV-1a over every byte
 * before it) and an "end" marker that must also end the file, so
 * truncation, bit rot and appended garbage are all rejected with a
 * diagnostic instead of yielding partial state. Writes go to a temp
 * file in the same directory followed by an atomic rename, so a crash
 * mid-write never corrupts the previous snapshot.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace cirfix::core {

/** One quarantined patch key with the outcome that condemned it. */
struct QuarantineRecord
{
    std::string key;
    QuarantineEntry entry;
};

/** One resident fitness-cache entry (keyed, in LRU order). */
struct CacheRecord
{
    std::string key;
    FitnessCache::Entry entry;
};

/**
 * Complete serialized engine state: everything the generation loop
 * reads, so a resumed run is indistinguishable from one that never
 * stopped.
 */
struct EngineState
{
    /** Bump when the on-disk layout changes; readers reject other
     *  versions rather than misparse. Version 2 added the sealing
     *  checksum record; version 3 widened the outcome-count line for
     *  EvalOutcome::EarlyAbort; version 4 widened it again for
     *  EvalOutcome::LintReject and added lintRejects to the "stream"
     *  line; version 5 added the witness-bench section (oracle
     *  provenance: which hardening benches the recorded fitness values
     *  were scored under); version 6 added the writer-provenance blob
     *  (which fleet worker checkpointed the run); version 7 added the
     *  "compiled" line (cumulative compiled-backend counters, so a
     *  resumed run reports the same backend accounting as an
     *  uninterrupted one); version 8 added the island-provenance line
     *  (which island of how many wrote the snapshot, and its migration
     *  epoch) and the migrant ledger (which elite keys each epoch
     *  injected), so a crashed island resumes into its own slot of the
     *  K-island schedule and never into another's. Version-7 snapshots
     *  still load (a plain single-population run is island -1 of 0 with
     *  an empty ledger); snapshots NEWER than this build are rejected
     *  with both versions named so the fix (upgrade the binary) is
     *  obvious. */
    static constexpr int kVersion = 8;
    /** Oldest version decodeSnapshot() still accepts. */
    static constexpr int kOldestReadableVersion = 7;

    uint64_t seed = 0;
    /** FNV-1a of the printed faulty design; resume refuses to continue
     *  a snapshot against a different design. */
    uint64_t designFingerprint = 0;
    /** Who wrote this checkpoint (fleet worker name, or empty for a
     *  local run). Purely informational: it never enters the design
     *  fingerprint, the RNG stream, or any resume validation, so a job
     *  that fails over between workers stays bit-identical in every
     *  search-visible way while each checkpoint still records which
     *  host produced it. */
    std::string provenance;
    /** mt19937_64 stream state (operator<< text form). */
    std::string rngState;
    int generationsDone = 0;
    long evals = 0;
    long invalid = 0;
    long mutants = 0;
    long earlyAborts = 0;
    uint64_t rowsScored = 0;
    uint64_t rowsSkipped = 0;
    long lintRejects = 0;
    /** Cumulative compiled-backend counters at snapshot time. */
    sim::CompiledStats compiled;
    double elapsedSeconds = 0.0;
    double bestSeen = -1.0;
    /** Witness benches installed when the snapshot was taken. Every
     *  fitness value in the population and cache was scored under the
     *  main oracle PLUS these benches; resume() refuses a config whose
     *  witness set differs (see rehardenSnapshot for migration). */
    std::vector<OracleBench> witnesses;
    std::vector<std::pair<long, double>> trajectory;
    OutcomeCounts outcomes;
    /** Island provenance (v8): which slot of a K-island run wrote this
     *  snapshot. A plain run is island -1 of 0. resume() refuses a
     *  snapshot whose slot differs from the engine's — the RNG stream
     *  and ledger are meaningless under any other slot. */
    int islandIndex = -1;
    int islandCount = 0;
    /** Migration epochs completed when the snapshot was taken. */
    int migrationEpoch = 0;
    /** Per-epoch keys of the migrants actually injected (v8). The
     *  coordinator replays this on failover to verify the resumed
     *  island re-derived the same schedule. */
    std::vector<MigrantRecord> migrantLedger;
    std::vector<Variant> population;
    /** Sorted by key (so snapshots are byte-stable). */
    std::vector<QuarantineRecord> quarantine;
    CacheStats cacheStats;
    /** LRU-first: re-insert() in order to reproduce eviction order. */
    std::vector<CacheRecord> cache;
};

/** FNV-1a 64-bit hash of @p text (design fingerprinting). */
uint64_t fingerprintSource(const std::string &text);

/** Serialize @p state to the snapshot text format. */
std::string encodeSnapshot(const EngineState &state);

/** Parse encodeSnapshot() output. @throws std::runtime_error on a bad
 *  magic line, unsupported version, or any structural corruption. */
EngineState decodeSnapshot(const std::string &text);

/** Write @p state to @p path atomically (temp file + rename).
 *  @throws std::runtime_error when the file cannot be written. */
void saveSnapshot(const std::string &path, const EngineState &state);

/** Read and decode the snapshot at @p path.
 *  @throws std::runtime_error when unreadable or corrupt. */
EngineState loadSnapshot(const std::string &path);

/** Serialize a list of variants (patch + fitness + validity) using the
 *  snapshot wire format. Used by the fleet to ship elite migrants and
 *  shared cache entries between workers; traces are included so a
 *  fleet cache hit is indistinguishable from a local one. */
std::string encodeVariants(const std::vector<Variant> &variants);

/** Parse encodeVariants() output. @throws std::runtime_error on
 *  structural corruption. @p faulty is the design the patches apply
 *  to (patch donors are reparsed against it, as in decodeSnapshot). */
std::vector<Variant> decodeVariants(const std::string &text);

} // namespace cirfix::core
