#pragma once

/**
 * @file
 * Parallel candidate evaluation substrate: a fixed-size thread pool
 * plus an LRU fitness cache.
 *
 * Generate-and-validate repair is embarrassingly parallel across
 * candidates: each fitness probe clones the faulty design, applies a
 * patch, and elaborates + simulates its own private object graph. The
 * engine exploits that by pre-drawing every stochastic decision for a
 * generation on the main thread (so the RNG stream is independent of
 * scheduling), fanning the resulting child patches out to an EvalPool,
 * and merging results back in deterministic child order. The pool is
 * deliberately work-stealing-free: workers pull job indices from one
 * shared atomic counter, every job writes only its own result slot,
 * and completion order cannot leak into engine state.
 *
 * The FitnessCache sits in front of evaluation. Patches are keyed by
 * Patch::key(), a canonical fingerprint of the edit list, so duplicate
 * children, elite carry-overs, and minimization probes cost a map
 * lookup instead of a simulation. The cache is LRU-bounded and keeps
 * hit/miss/eviction counts that the engine surfaces in RepairResult.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/evaloutcome.h"
#include "core/fitness.h"
#include "sim/trace.h"

namespace cirfix::core {

/**
 * Fixed-size pool for batch candidate evaluation.
 *
 * A pool of size N uses the calling thread plus N-1 workers, so
 * EvalPool(1) degenerates to fully serial in-thread execution (no
 * worker threads at all, no synchronization on the job path). run()
 * blocks until every job of the batch has finished; jobs must be
 * independent (they may only write state they own).
 */
class EvalPool
{
  public:
    /** @param num_threads total evaluators; clamped to >= 1. */
    explicit EvalPool(int num_threads);
    ~EvalPool();

    EvalPool(const EvalPool &) = delete;
    EvalPool &operator=(const EvalPool &) = delete;

    int size() const { return threads_; }

    /**
     * Execute every job in @p jobs and wait for completion. The
     * calling thread participates. A job that throws has its exception
     * *and* its message captured (never silently dropped); after the
     * batch drains, the exception of the lowest-indexed failing job is
     * rethrown (deterministically). Jobs that contain their own
     * failures (the engine's evaluation jobs record an EvalOutcome in
     * their result slot) never reach this path.
     */
    void run(const std::vector<std::function<void()>> &jobs);

    /** Total jobs that threw over the pool's lifetime (for end-of-run
     *  failure accounting; contained failures do not count here). */
    long jobFailures() const { return jobFailures_; }
    /** Messages of the failing jobs of the most recent batch, in job
     *  order ("" for jobs that succeeded). */
    const std::vector<std::string> &lastErrorMessages() const
    {
        return errorMessages_;
    }

  private:
    void workerLoop();
    void drainJobs();

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;   //!< workers wait for a batch
    std::condition_variable done_;   //!< caller waits for completion
    const std::vector<std::function<void()>> *jobs_ = nullptr;
    std::vector<std::exception_ptr> errors_;
    std::vector<std::string> errorMessages_;
    long jobFailures_ = 0;
    std::atomic<size_t> next_{0};
    size_t pending_ = 0;       //!< jobs of the current batch not yet done
    int activeDrainers_ = 0;   //!< workers currently inside drainJobs()
    uint64_t batchId_ = 0;
    bool stop_ = false;
};

/** Cache accounting surfaced in RepairResult. */
struct CacheStats
{
    long hits = 0;        //!< evaluations satisfied without simulating
    long misses = 0;      //!< evaluations that had to run for real
    long evictions = 0;   //!< entries dropped by the LRU bound
};

/**
 * LRU map Patch::key() -> evaluation outcome.
 *
 * Not internally synchronized: the engine only touches it from the
 * main thread (lookups before fan-out, insertions during the ordered
 * merge), which also keeps hit/miss/eviction accounting and eviction
 * order bit-identical at any thread count.
 */
class FitnessCache
{
  public:
    struct Entry
    {
        bool valid = false;       //!< structurally valid ("compiled")
        FitnessResult fit;
        sim::Trace trace;
        EvalOutcome outcome = EvalOutcome::Ok;
        std::string error;        //!< diagnostic for non-Ok outcomes
    };

    /** @param capacity max resident entries; 0 disables caching. */
    explicit FitnessCache(size_t capacity) : capacity_(capacity) {}

    // Copying would leave map_ iterators pointing into the source's
    // lru_ list; moving keeps them valid (std::list iterators survive
    // a move), so only moves are allowed.
    FitnessCache(const FitnessCache &) = delete;
    FitnessCache &operator=(const FitnessCache &) = delete;
    FitnessCache(FitnessCache &&) = default;
    FitnessCache &operator=(FitnessCache &&) = default;

    /**
     * Look up @p key, bumping it to most-recently-used. Counts a hit
     * or a miss. The pointer is invalidated by the next insert().
     */
    const Entry *find(const std::string &key);

    /** Record a hit that bypassed find() (in-batch duplicate). */
    void noteDuplicateHit() { ++stats_.hits; }

    /** Insert (or refresh) @p key, evicting LRU entries over capacity. */
    void insert(const std::string &key, Entry entry);

    size_t size() const { return map_.size(); }
    size_t capacity() const { return capacity_; }
    const CacheStats &stats() const { return stats_; }
    /** Overwrite the accounting (snapshot restore). */
    void setStats(const CacheStats &stats) { stats_ = stats; }

    using LruList = std::list<std::pair<std::string, Entry>>;

    /** Resident entries, front = most recently used. Snapshot code
     *  walks this back-to-front and re-insert()s LRU-first so the
     *  restored eviction order matches the original exactly. */
    const LruList &entries() const { return lru_; }

  private:

    size_t capacity_;
    LruList lru_;  //!< front = most recently used
    std::unordered_map<std::string, LruList::iterator> map_;
    CacheStats stats_;
};

} // namespace cirfix::core
