#include "benchmarks/registry.h"

/**
 * @file
 * reed_solomon_decoder: syndrome computation for a Reed-Solomon code
 * over GF(2^4) — an input buffer memory, a multiply-accumulate
 * syndrome FSM (Horner evaluation with the alpha primitive element),
 * an error-magnitude threshold, and an out_stage child module that
 * streams buffered symbols out (size-reduced stand-in for the
 * OpenCores RS decoder; same idioms: GF arithmetic, memories,
 * pipelined output staging with reset).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeReedSolomonProject()
{
    ProjectSpec p;
    p.name = "reed_solomon_decoder";
    p.description = "Core for Reed-Solomon error correction";
    p.dutModule = "rs_decoder";
    p.tbModule = "rs_decoder_tb";
    p.verifyModule = "rs_decoder_vtb";

    p.goldenSource = R"(
module rs_out_stage (clk, reset, out_en, data, out_byte, out_valid);
    input clk;
    input reset;
    input out_en;
    input [3:0] data;
    output [3:0] out_byte;
    output out_valid;
    reg [3:0] out_byte;
    reg out_valid;

    // Output register stage: generates output bytes by pipelining
    // the buffered symbols handed over by the decoder.
    always @(posedge clk)
    begin : OUT_BYTE_REG
        if (reset == 1'b1) begin
            out_byte <= 4'h0;
        end
        else begin
            if (out_en == 1'b1) begin
                out_byte <= data;
            end
        end
    end

    always @(posedge clk)
    begin : OUT_VALID_REG
        if (reset == 1'b1) begin
            out_valid <= 1'b0;
        end
        else begin
            out_valid <= out_en;
        end
    end
endmodule

module rs_decoder (clk, reset, data_in, data_valid, start,
                   syn0, syn1, err_detect, out_byte, out_valid, done);
    input clk;
    input reset;
    input [3:0] data_in;
    input data_valid;
    input start;
    output [3:0] syn0;
    output [3:0] syn1;
    output err_detect;
    output [3:0] out_byte;
    output out_valid;
    output done;
    reg [3:0] syn0;
    reg [3:0] syn1;
    reg err_detect;
    reg done;

    parameter N = 4'd8;
    parameter LOAD    = 2'd0;
    parameter COMPUTE = 2'd1;
    parameter STREAM  = 2'd2;
    parameter DONE    = 2'd3;

    reg [1:0] state;
    reg [3:0] buffer [0:7];
    reg [3:0] wr_idx;
    reg [3:0] rd_idx;
    reg [9:0] err_threshold;
    reg [9:0] err_weight;
    reg out_en;
    reg [3:0] out_data;

    wire [3:0] syn1_alpha;

    rs_out_stage out_stage (.clk(clk), .reset(reset), .out_en(out_en),
                            .data(out_data), .out_byte(out_byte),
                            .out_valid(out_valid));

    // Horner step: multiply the running syndrome by alpha (= x) in
    // GF(2^4) with reduction by x^4 + x + 1.
    assign syn1_alpha = (syn1[3] == 1'b1)
                        ? ((syn1 << 1) ^ 4'h3)
                        : (syn1 << 1);

    always @(posedge clk)
    begin : DECODE
        if (reset == 1'b1) begin
            state <= LOAD;
            wr_idx <= 4'd0;
            rd_idx <= 4'd0;
            syn0 <= 4'h0;
            syn1 <= 4'h0;
            err_detect <= 1'b0;
            err_threshold <= 10'd500;
            err_weight <= 10'd0;
            out_en <= 1'b0;
            out_data <= 4'h0;
            done <= 1'b0;
        end
        else begin
            case (state)
                LOAD : begin
                    done <= 1'b0;
                    if (data_valid == 1'b1) begin
                        buffer[wr_idx] <= data_in;
                        wr_idx <= wr_idx + 4'd1;
                    end
                    if (start == 1'b1) begin
                        rd_idx <= 4'd0;
                        syn0 <= 4'h0;
                        syn1 <= 4'h0;
                        err_weight <= 10'd0;
                        state <= COMPUTE;
                    end
                end
                COMPUTE : begin
                    syn0 <= syn0 ^ buffer[rd_idx];
                    syn1 <= syn1_alpha ^ buffer[rd_idx];
                    err_weight <= err_weight
                                  + {3'b000, buffer[rd_idx], 3'b000};
                    if (rd_idx == N - 1) begin
                        rd_idx <= 4'd0;
                        state <= STREAM;
                    end
                    else begin
                        rd_idx <= rd_idx + 4'd1;
                    end
                end
                STREAM : begin
                    err_detect <= (err_weight > err_threshold)
                                  ? 1'b1 : 1'b0;
                    out_en <= 1'b1;
                    out_data <= buffer[rd_idx];
                    if (rd_idx == N - 1) begin
                        state <= DONE;
                    end
                    else begin
                        rd_idx <= rd_idx + 4'd1;
                    end
                end
                DONE : begin
                    out_en <= 1'b0;
                    done <= 1'b1;
                    wr_idx <= 4'd0;
                    state <= LOAD;
                end
            endcase
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module rs_decoder_tb;
    reg clk;
    reg reset;
    reg [3:0] data_in;
    reg data_valid;
    reg start;
    wire [3:0] syn0;
    wire [3:0] syn1;
    wire err_detect;
    wire [3:0] out_byte;
    wire out_valid;
    wire done;
    integer i;

    rs_decoder dut (.clk(clk), .reset(reset), .data_in(data_in),
                    .data_valid(data_valid), .start(start),
                    .syn0(syn0), .syn1(syn1),
                    .err_detect(err_detect), .out_byte(out_byte),
                    .out_valid(out_valid), .done(done));

    initial begin
        clk = 0;
        reset = 0;
        data_in = 4'h0;
        data_valid = 0;
        start = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        reset = 1;
        repeat (2) @(negedge clk);
        reset = 0;
        @(negedge clk);
        // Load an 8-symbol heavy codeword (trips the error-magnitude
        // threshold), then decode it.
        data_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 4'h9 ^ i[3:0];
            @(negedge clk);
        end
        data_valid = 0;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (done == 1'b1);
        repeat (2) @(negedge clk);
        // Decode a light codeword (below the threshold).
        data_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 4'h3 + i[3:0];
            @(negedge clk);
        end
        data_valid = 0;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (done == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #2500 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module rs_decoder_vtb;
    reg clk;
    reg reset;
    reg [3:0] data_in;
    reg data_valid;
    reg start;
    wire [3:0] syn0;
    wire [3:0] syn1;
    wire err_detect;
    wire [3:0] out_byte;
    wire out_valid;
    wire done;
    integer i;

    rs_decoder dut (.clk(clk), .reset(reset), .data_in(data_in),
                    .data_valid(data_valid), .start(start),
                    .syn0(syn0), .syn1(syn1),
                    .err_detect(err_detect), .out_byte(out_byte),
                    .out_valid(out_valid), .done(done));

    initial begin
        clk = 0;
        reset = 0;
        data_in = 4'h0;
        data_valid = 0;
        start = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        reset = 1;
        repeat (2) @(negedge clk);
        reset = 0;
        @(negedge clk);
        // Codeword with large symbol values (exercises the error
        // threshold), decoded twice, with a reset between runs.
        data_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 4'hf - i[3:0];
            @(negedge clk);
        end
        data_valid = 0;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (done == 1'b1);
        repeat (2) @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        @(negedge clk);
        data_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 4'h2 + i[3:0];
            @(negedge clk);
        end
        data_valid = 0;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (done == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #3000 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
