#include "benchmarks/registry.h"

/**
 * @file
 * tate_pairing: a Galois-field exponentiation core — an iterative
 * GF(2^4) multiplier child module driven by a square-and-multiply
 * Miller-loop-style FSM (size-reduced stand-in for the OpenCores Tate
 * bilinear pairing core; same idioms: GF shift-and-reduce arithmetic,
 * multi-cycle sub-unit handshaking, module hierarchy).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeTatePairingProject()
{
    ProjectSpec p;
    p.name = "tate_pairing";
    p.description = "Core for the Tate bilinear pairing algorithm "
                    "for elliptic curves";
    p.dutModule = "tate_core";
    p.tbModule = "tate_core_tb";
    p.verifyModule = "tate_core_vtb";

    p.goldenSource = R"(
module gf_mult (clk, rst, start, a, b, done, prod);
    input clk;
    input rst;
    input start;
    input [3:0] a;
    input [3:0] b;
    output done;
    output [3:0] prod;
    reg done;
    reg [3:0] prod;

    reg [3:0] acc;
    reg [3:0] av;
    reg [3:0] bv;
    reg [2:0] cnt;
    reg running;

    // Shift-and-add multiplication in GF(2^4) modulo x^4 + x + 1.
    always @(posedge clk)
    begin : MULT
        if (rst == 1'b1) begin
            acc <= 4'h0;
            av <= 4'h0;
            bv <= 4'h0;
            cnt <= 3'd0;
            running <= 1'b0;
            done <= 1'b0;
            prod <= 4'h0;
        end
        else begin
            if (start == 1'b1 && running == 1'b0) begin
                acc <= 4'h0;
                av <= a;
                bv <= b;
                cnt <= 3'd4;
                running <= 1'b1;
                done <= 1'b0;
            end
            else begin
                if (running == 1'b1) begin
                    if (cnt == 3'd0) begin
                        prod <= acc;
                        done <= 1'b1;
                        running <= 1'b0;
                    end
                    else begin
                        if (bv[0] == 1'b1) begin
                            acc <= acc ^ av;
                        end
                        av <= (av[3] == 1'b1)
                              ? ((av << 1) ^ 4'h3)
                              : (av << 1);
                        bv <= bv >> 1;
                        cnt <= cnt - 3'd1;
                    end
                end
            end
        end
    end
endmodule

module tate_core (clk, rst, start, base, k, result, valid);
    input clk;
    input rst;
    input start;
    input [3:0] base;
    input [7:0] k;
    output [3:0] result;
    output valid;
    reg [3:0] result;
    reg valid;

    parameter IDLE      = 3'd0;
    parameter SQ_START  = 3'd1;
    parameter SQ_WAIT   = 3'd2;
    parameter MUL_START = 3'd3;
    parameter MUL_WAIT  = 3'd4;
    parameter NEXT_BIT  = 3'd5;
    parameter FINISH    = 3'd6;

    reg [2:0] state;
    reg [3:0] acc;
    reg [3:0] cnt;
    reg [3:0] opa;
    reg [3:0] opb;
    reg mstart;
    wire mdone;
    wire [3:0] mprod;

    gf_mult mul (.clk(clk), .rst(rst), .start(mstart), .a(opa),
                 .b(opb), .done(mdone), .prod(mprod));

    // Square-and-multiply over the bits of k, MSB first: the scalar
    // accumulation at the heart of a Miller-loop iteration.
    always @(posedge clk)
    begin : LOOP
        if (rst == 1'b1) begin
            state <= IDLE;
            acc <= 4'h1;
            cnt <= 4'd0;
            opa <= 4'h0;
            opb <= 4'h0;
            mstart <= 1'b0;
            result <= 4'h0;
            valid <= 1'b0;
        end
        else begin
            case (state)
                IDLE : begin
                    valid <= 1'b0;
                    if (start == 1'b1) begin
                        acc <= 4'h1;
                        cnt <= 4'd8;
                        state <= SQ_START;
                    end
                end
                SQ_START : begin
                    opa <= acc;
                    opb <= acc;
                    mstart <= 1'b1;
                    state <= SQ_WAIT;
                end
                SQ_WAIT : begin
                    mstart <= 1'b0;
                    if (mdone == 1'b1 && mstart == 1'b0) begin
                        acc <= mprod;
                        if (k[cnt - 4'd1] == 1'b1) begin
                            state <= MUL_START;
                        end
                        else begin
                            state <= NEXT_BIT;
                        end
                    end
                end
                MUL_START : begin
                    opa <= acc;
                    opb <= base;
                    mstart <= 1'b1;
                    state <= MUL_WAIT;
                end
                MUL_WAIT : begin
                    mstart <= 1'b0;
                    if (mdone == 1'b1 && mstart == 1'b0) begin
                        acc <= mprod;
                        state <= NEXT_BIT;
                    end
                end
                NEXT_BIT : begin
                    if (cnt == 4'd1) begin
                        state <= FINISH;
                    end
                    else begin
                        cnt <= cnt - 4'd1;
                        state <= SQ_START;
                    end
                end
                FINISH : begin
                    result <= acc;
                    valid <= 1'b1;
                    state <= IDLE;
                end
                default : begin
                    state <= IDLE;
                end
            endcase
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module tate_core_tb;
    reg clk;
    reg rst;
    reg start;
    reg [3:0] base;
    reg [7:0] k;
    wire [3:0] result;
    wire valid;

    tate_core dut (.clk(clk), .rst(rst), .start(start), .base(base),
                   .k(k), .result(result), .valid(valid));

    initial begin
        clk = 0;
        rst = 0;
        start = 0;
        base = 4'h0;
        k = 8'h00;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        base = 4'h7;
        k = 8'h35;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (valid == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #2500 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module tate_core_vtb;
    reg clk;
    reg rst;
    reg start;
    reg [3:0] base;
    reg [7:0] k;
    wire [3:0] result;
    wire valid;

    tate_core dut (.clk(clk), .rst(rst), .start(start), .base(base),
                   .k(k), .result(result), .valid(valid));

    initial begin
        clk = 0;
        rst = 0;
        start = 0;
        base = 4'h0;
        k = 8'h00;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        // Two exponentiations with different base/exponent pairs.
        base = 4'hb;
        k = 8'ha2;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (valid == 1'b1);
        repeat (2) @(negedge clk);
        base = 4'h3;
        k = 8'h0f;
        start = 1;
        @(negedge clk);
        start = 0;
        wait (valid == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #5000 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
