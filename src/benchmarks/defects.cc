#include "benchmarks/registry.h"

/**
 * @file
 * The 32 defect scenarios of Table 3, re-transplanted into this
 * repository's implementations of the 11 benchmark projects. Each
 * scenario matches its paper row in project, defect description, and
 * category, and records the paper's outcome (correct / plausible-only
 * / no-repair, plus repair time) for side-by-side comparison in the
 * bench output and EXPERIMENTS.md.
 */

namespace cirfix::bench {

using core::DefectSpec;
using core::PaperOutcome;
using core::Rewrite;

namespace {

std::vector<DefectSpec>
buildDefects()
{
    std::vector<DefectSpec> d;

    auto add = [&](const char *id, const char *project, const char *desc,
                   int cat, PaperOutcome outcome, double paper_time,
                   std::vector<Rewrite> rewrites,
                   const char *repair_module = "") {
        DefectSpec spec;
        spec.id = id;
        spec.project = project;
        spec.description = desc;
        spec.category = cat;
        spec.paperOutcome = outcome;
        spec.paperTimeSeconds = paper_time;
        spec.rewrites = std::move(rewrites);
        spec.repairModule = repair_module;
        d.push_back(std::move(spec));
    };

    // ---------------- decoder_3_to_8 ----------------
    add("decoder_numeric_errors", "decoder_3_to_8",
        "Two separate numeric errors", 1, PaperOutcome::Correct, 13984.3,
        {{"3'b010 : y = 8'b00000100;", "3'b010 : y = 8'b00000101;"},
         {"3'b101 : y = 8'b00100000;", "3'b101 : y = 8'b00011111;"}});

    add("decoder_incorrect_assignment", "decoder_3_to_8",
        "Incorrect assignment", 2, PaperOutcome::NoRepair, -1,
        {{"3'b111 : y = 8'b10000000;", "3'b111 : y = {5'b00000, a};"}});

    // ---------------- counter ----------------
    add("counter_sensitivity", "counter",
        "Incorrect sensitivity list", 1, PaperOutcome::Correct, 19.8,
        {{"always @(posedge clk)\n    begin : COUNTER",
          "always @(negedge clk)\n    begin : COUNTER"}});

    add("counter_incorrect_reset", "counter",
        "Incorrect reset", 1, PaperOutcome::Correct, 32239.2,
        {{"counter_out <= #1 4'b0000;\n"
          "            overflow_out <= #1 1'b0;",
          "counter_out <= #1 4'b0001;"}});

    add("counter_increment", "counter",
        "Incorrect incremental of counter", 1, PaperOutcome::Correct,
        27781.3,
        {{"counter_out <= #1 counter_out + 1;",
          "counter_out <= #1 counter_out + 2;"}});

    // ---------------- flip_flop ----------------
    add("flipflop_conditional", "flip_flop",
        "Incorrect conditional", 1, PaperOutcome::Correct, 7.8,
        {{"if (t == 1'b1) begin", "if (t != 1'b1) begin"}});

    add("flipflop_branches_swapped", "flip_flop",
        "Branches of if-statement swapped", 1, PaperOutcome::Correct,
        923.5,
        {{"if (t == 1'b1) begin\n"
          "                q <= !q;\n"
          "            end\n"
          "            else begin\n"
          "                q <= q;\n"
          "            end",
          "if (t == 1'b1) begin\n"
          "                q <= q;\n"
          "            end\n"
          "            else begin\n"
          "                q <= !q;\n"
          "            end"}});

    // ---------------- fsm_full ----------------
    add("fsm_case_statement", "fsm_full",
        "Incorrect case statement", 1, PaperOutcome::NoRepair, -1,
        {{"case (state)", "case (state ^ 3'b101)"}});

    add("fsm_blocking_assignments", "fsm_full",
        "Incorrectly blocking assignments", 1,
        PaperOutcome::PlausibleOnly, 4282.2,
        {{"state <= next_state;", "state = next_state;"},
         {"busy <= (state != IDLE);", "busy = (state != IDLE);"}});

    add("fsm_missing_next_state_default", "fsm_full",
        "Assignment to next state and default in case statement "
        "omitted", 2, PaperOutcome::PlausibleOnly, 1536.4,
        {{"if (req_0 == 1'b1) begin\n"
          "                    next_state = GNT0;\n"
          "                end\n"
          "                else if (req_1 == 1'b1) begin",
          "if (req_0 == 1'b1) begin\n"
          "                end\n"
          "                else if (req_1 == 1'b1) begin"},
         {"default : begin\n"
          "                next_state = IDLE;\n"
          "            end",
          "default : begin\n"
          "            end"}});

    add("fsm_missing_assign_sensitivity", "fsm_full",
        "Assignment to next state omitted, incorrect sensitivity list",
        2, PaperOutcome::Correct, 37.0,
        {{"always @(state or req_0 or req_1 or req_2)",
          "always @(req_0)"},
         {"else if (req_2 == 1'b1) begin\n"
          "                    next_state = GNT2;\n"
          "                end",
          "else if (req_2 == 1'b1) begin\n"
          "                end"}});

    // ---------------- lshift_reg ----------------
    add("lshift_blocking", "lshift_reg",
        "Incorrect blocking assignment", 1, PaperOutcome::Correct, 14.6,
        {{"op <= op << 1;", "op = op << 1;"}});

    add("lshift_conditional", "lshift_reg",
        "Incorrect conditional", 1, PaperOutcome::Correct, 33.74,
        {{"if (load_en == 1'b1) begin", "if (load_en != 1'b1) begin"}});

    add("lshift_sensitivity", "lshift_reg",
        "Incorrect sensitivity list", 1, PaperOutcome::Correct, 7.8,
        {{"always @(posedge clk)\n    begin : SHIFT",
          "always @(negedge clk)\n    begin : SHIFT"}});

    // ---------------- mux_4_1 ----------------
    add("mux_1bit_output", "mux_4_1",
        "1 bit instead of 4 bit output", 1, PaperOutcome::NoRepair, -1,
        {{"output [3:0] out;\n    reg [3:0] out;",
          "output out;\n    reg out;"}});

    add("mux_hex_constants", "mux_4_1",
        "Hex instead of binary constants", 1,
        PaperOutcome::PlausibleOnly, 10315.4,
        {{"2'b10 : out = in2;", "2'h10 : out = in2;"},
         {"2'b11 : out = in3;", "2'h11 : out = in3;"}});

    add("mux_numeric_errors", "mux_4_1",
        "Three separate numeric errors", 2, PaperOutcome::PlausibleOnly,
        15387.9,
        {{"2'b00 : out = in0;", "2'b01 : out = in0;"},
         {"2'b01 : out = in1;", "2'b10 : out = in1;"},
         {"2'b10 : out = in2;", "2'b00 : out = in2;"}});

    // ---------------- i2c ----------------
    add("i2c_sensitivity", "i2c",
        "Incorrect sensitivity list", 2, PaperOutcome::Correct, 183,
        {{"always @(state or sda_shift)\n    begin : SDA_MUX",
          "always @(state)\n    begin : SDA_MUX"}},
        "i2c_master");

    add("i2c_address_assignment", "i2c",
        "Incorrect address assignment", 2, PaperOutcome::PlausibleOnly,
        57.9,
        {{"shift_reg <= {addr, rw};\n"
          "                        bit_cnt <= 4'd7;",
          "shift_reg <= {addr, 1'b0};\n"
          "                        bit_cnt <= 4'd6;"}},
        "i2c_master");

    add("i2c_no_ack", "i2c",
        "No command acknowledgement", 2, PaperOutcome::Correct, 1560.5,
        {{"sda_shift <= 1'b1;\n"
          "                        ack_out <= 1'b1;\n"
          "                        bit_cnt <= 4'd7;",
          "sda_shift <= 1'b1;\n"
          "                        bit_cnt <= 4'd7;"}},
        "i2c_master");

    // ---------------- sha3 ----------------
    add("sha3_loop_bound", "sha3",
        "Off-by-one error in loop", 1, PaperOutcome::Correct, 50.4,
        {{"for (i = 0; i < 25; i = i + 1) begin\n            chi[i]",
          "for (i = 0; i < 24; i = i + 1) begin\n            chi[i]"}});

    add("sha3_negation", "sha3",
        "Incorrect bitwise negation", 1, PaperOutcome::NoRepair, -1,
        {{"chi[i] = theta[i] ^ (~theta[(i + 1) % 25]",
          "chi[i] = theta[i] ^ (theta[(i + 1) % 25]"}});

    add("sha3_wire_assign", "sha3",
        "Incorrect assignment to wires", 2, PaperOutcome::NoRepair, -1,
        {{"assign hash_swizzle = {hash_reg[7:0], hash_reg[15:8],",
          "assign hash_swizzle = {hash_reg[15:8], hash_reg[7:0],"}});

    add("sha3_overflow_check", "sha3",
        "Skipped buffer overflow check", 2, PaperOutcome::Correct, 50.0,
        {{"if (buf_cnt == BUF_MAX - 1) begin",
          "if (buf_cnt != BUF_MAX - 1) begin"}});

    // ---------------- tate_pairing ----------------
    add("tate_shift_logic", "tate_pairing",
        "Incorrect logic for bitshifting", 1, PaperOutcome::NoRepair, -1,
        {{"? ((av << 1) ^ 4'h3)", "? ((av ^ 4'h3) << 1)"}});

    add("tate_shift_operator", "tate_pairing",
        "Incorrect operator for bitshifting", 1, PaperOutcome::NoRepair,
        -1, {{"bv <= bv >> 1;", "bv <= bv << 1;"}});

    add("tate_instantiation", "tate_pairing",
        "Incorrect instantiation of modules", 2, PaperOutcome::NoRepair,
        -1,
        {{"gf_mult mul (.clk(clk), .rst(rst), .start(mstart), .a(opa),",
          "gf_mult mul (.clk(rst), .rst(clk), .start(mstart), "
          ".a(opa),"}});

    // ---------------- reed_solomon_decoder ----------------
    add("rs_register_size", "reed_solomon_decoder",
        "Insufficient register size for decimal values", 1,
        PaperOutcome::NoRepair, -1,
        {{"reg [9:0] err_threshold;", "reg [7:0] err_threshold;"}});

    add("rs_out_stage_sensitivity", "reed_solomon_decoder",
        "Incorrect sensitivity list for reset", 2, PaperOutcome::Correct,
        28547.8,
        {{"always @(posedge clk)\n    begin : OUT_BYTE_REG",
          "always @(negedge reset)\n    begin : OUT_BYTE_REG"}},
        "rs_out_stage");

    // ---------------- sdram_controller ----------------
    add("sdram_numeric_definitions", "sdram_controller",
        "Numeric error in definitions", 1, PaperOutcome::NoRepair, -1,
        {{"parameter CMD_NOP   = 3'b111;",
          "parameter CMD_NOP   = 3'b011;"}});

    add("sdram_case_statement", "sdram_controller",
        "Incorrect case statement", 2, PaperOutcome::NoRepair, -1,
        {{"case (state)", "case (state_cnt)"}});

    add("sdram_sync_reset", "sdram_controller",
        "Incorrect assignments to registers during synchronous reset",
        2, PaperOutcome::Correct, 16607.6,
        {{"state <= INIT_NOP1;\n"
          "            command <= CMD_NOP;\n"
          "            state_cnt <= 4'hf;",
          "state <= INIT_NOP1;\n"
          "            state_cnt <= 4'hf;"},
         {"busy <= 1'b0;\n            rd_ready <= 1'b0;",
          "busy <= 1'b1;\n            rd_ready <= 1'b0;"}});

    return d;
}

} // namespace

const std::vector<DefectSpec> &
allDefects()
{
    static const std::vector<DefectSpec> defects = buildDefects();
    return defects;
}

const DefectSpec &
getDefect(const std::string &id)
{
    for (auto &d : allDefects())
        if (d.id == id)
            return d;
    throw std::out_of_range("unknown defect id: " + id);
}

std::vector<const DefectSpec *>
defectsForProject(const std::string &project)
{
    std::vector<const DefectSpec *> out;
    for (auto &d : allDefects())
        if (d.project == project)
            out.push_back(&d);
    return out;
}

} // namespace cirfix::bench
