#include "benchmarks/registry.h"

/**
 * @file
 * i2c: a two-wire serial bus master — FSM with start/stop conditions,
 * address and data shift phases, acknowledge generation, and a clock
 * divider child module (size-reduced stand-in for the OpenCores i2c
 * core; same design idioms: multi-module hierarchy, bit counters,
 * shift registers, combinational output muxing).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeI2cProject()
{
    ProjectSpec p;
    p.name = "i2c";
    p.description = "Two-wire, bidirectional serial bus for data "
                    "exchange between devices";
    p.dutModule = "i2c_master";
    p.tbModule = "i2c_master_tb";
    p.verifyModule = "i2c_master_vtb";

    p.goldenSource = R"(
module i2c_clk_div (clk, rst, tick);
    input clk;
    input rst;
    output tick;
    reg tick;
    reg cnt;

    // Divide-by-two tick generator pacing the bus FSM.
    always @(posedge clk)
    begin : DIV
        if (rst == 1'b1) begin
            cnt <= 1'b0;
            tick <= 1'b0;
        end
        else begin
            cnt <= !cnt;
            tick <= cnt;
        end
    end
endmodule

module i2c_master (clk, rst, start, rw, addr, data_in, sda_in,
                   scl, sda, busy, ack_out, data_out);
    input clk;
    input rst;
    input start;
    input rw;
    input [6:0] addr;
    input [7:0] data_in;
    input sda_in;
    output scl;
    output sda;
    output busy;
    output ack_out;
    output [7:0] data_out;
    reg scl;
    reg sda;
    reg busy;
    reg ack_out;
    reg [7:0] data_out;

    parameter IDLE     = 3'd0;
    parameter START    = 3'd1;
    parameter ADDR     = 3'd2;
    parameter ACK_ADDR = 3'd3;
    parameter WRITE    = 3'd4;
    parameter READ     = 3'd5;
    parameter ACK_DATA = 3'd6;
    parameter STOP     = 3'd7;

    reg [2:0] state;
    reg [3:0] bit_cnt;
    reg [7:0] shift_reg;
    reg sda_shift;
    wire tick;

    i2c_clk_div divider (.clk(clk), .rst(rst), .tick(tick));

    always @(posedge clk)
    begin : FSM
        if (rst == 1'b1) begin
            state <= IDLE;
            bit_cnt <= 4'd0;
            shift_reg <= 8'h00;
            sda_shift <= 1'b1;
            scl <= 1'b1;
            busy <= 1'b0;
            ack_out <= 1'b0;
            data_out <= 8'h00;
        end
        else begin
            if (tick == 1'b1) begin
                case (state)
                    IDLE : begin
                        scl <= 1'b1;
                        sda_shift <= 1'b1;
                        ack_out <= 1'b0;
                        if (start == 1'b1) begin
                            state <= START;
                            busy <= 1'b1;
                        end
                    end
                    START : begin
                        sda_shift <= 1'b0;
                        shift_reg <= {addr, rw};
                        bit_cnt <= 4'd7;
                        scl <= 1'b0;
                        state <= ADDR;
                    end
                    ADDR : begin
                        scl <= !scl;
                        sda_shift <= shift_reg[7];
                        shift_reg <= {shift_reg[6:0], 1'b0};
                        if (bit_cnt == 4'd0) begin
                            state <= ACK_ADDR;
                        end
                        else begin
                            bit_cnt <= bit_cnt - 4'd1;
                        end
                    end
                    ACK_ADDR : begin
                        sda_shift <= 1'b1;
                        ack_out <= 1'b1;
                        bit_cnt <= 4'd7;
                        if (rw == 1'b0) begin
                            shift_reg <= data_in;
                            state <= WRITE;
                        end
                        else begin
                            state <= READ;
                        end
                    end
                    WRITE : begin
                        scl <= !scl;
                        ack_out <= 1'b0;
                        sda_shift <= shift_reg[7];
                        shift_reg <= {shift_reg[6:0], 1'b0};
                        if (bit_cnt == 4'd0) begin
                            state <= ACK_DATA;
                        end
                        else begin
                            bit_cnt <= bit_cnt - 4'd1;
                        end
                    end
                    READ : begin
                        scl <= !scl;
                        ack_out <= 1'b0;
                        data_out <= {data_out[6:0], sda_in};
                        if (bit_cnt == 4'd0) begin
                            state <= ACK_DATA;
                        end
                        else begin
                            bit_cnt <= bit_cnt - 4'd1;
                        end
                    end
                    ACK_DATA : begin
                        ack_out <= 1'b1;
                        state <= STOP;
                    end
                    STOP : begin
                        sda_shift <= 1'b1;
                        scl <= 1'b1;
                        busy <= 1'b0;
                        ack_out <= 1'b0;
                        state <= IDLE;
                    end
                    default : begin
                        state <= IDLE;
                    end
                endcase
            end
        end
    end

    // SDA pin mux: the bus is released (pulled high) while the slave
    // drives data during READ; otherwise the shifted value goes out.
    always @(state or sda_shift)
    begin : SDA_MUX
        if (state == READ) begin
            sda = 1'b1;
        end
        else begin
            sda = sda_shift;
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module i2c_master_tb;
    reg clk;
    reg rst;
    reg start;
    reg rw;
    reg [6:0] addr;
    reg [7:0] data_in;
    reg sda_in;
    wire scl;
    wire sda;
    wire busy;
    wire ack_out;
    wire [7:0] data_out;

    i2c_master dut (.clk(clk), .rst(rst), .start(start), .rw(rw),
                    .addr(addr), .data_in(data_in), .sda_in(sda_in),
                    .scl(scl), .sda(sda), .busy(busy),
                    .ack_out(ack_out), .data_out(data_out));

    initial begin
        clk = 0;
        rst = 0;
        start = 0;
        rw = 0;
        addr = 7'h00;
        data_in = 8'h00;
        sda_in = 1'b1;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        // One write transaction to address 0x2a.
        addr = 7'h2a;
        rw = 1'b0;
        data_in = 8'h96;
        start = 1;
        wait (busy == 1'b1);
        start = 0;
        wait (busy == 1'b0);
        repeat (4) @(negedge clk);
        $finish;
    end

    // Watchdog: bound the simulation even if the FSM wedges.
    initial begin
        #1500 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module i2c_master_vtb;
    reg clk;
    reg rst;
    reg start;
    reg rw;
    reg [6:0] addr;
    reg [7:0] data_in;
    reg sda_in;
    reg [7:0] slave_data;
    wire scl;
    wire sda;
    wire busy;
    wire ack_out;
    wire [7:0] data_out;

    i2c_master dut (.clk(clk), .rst(rst), .start(start), .rw(rw),
                    .addr(addr), .data_in(data_in), .sda_in(sda_in),
                    .scl(scl), .sda(sda), .busy(busy),
                    .ack_out(ack_out), .data_out(data_out));

    initial begin
        clk = 0;
        rst = 0;
        start = 0;
        rw = 0;
        addr = 7'h00;
        data_in = 8'h00;
        sda_in = 1'b1;
        slave_data = 8'hc5;
    end

    always #5 clk = !clk;

    // The emulated slave rotates a pattern onto sda_in.
    always @(negedge clk)
    begin : SLAVE
        sda_in <= slave_data[7];
        slave_data <= {slave_data[6:0], slave_data[7]};
    end

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        // Write transaction to a different address.
        addr = 7'h51;
        rw = 1'b0;
        data_in = 8'h3d;
        start = 1;
        wait (busy == 1'b1);
        start = 0;
        wait (busy == 1'b0);
        repeat (2) @(negedge clk);
        // Read transaction: the rw bit must reach the bus.
        addr = 7'h33;
        rw = 1'b1;
        start = 1;
        wait (busy == 1'b1);
        start = 0;
        wait (busy == 1'b0);
        repeat (4) @(negedge clk);
        $finish;
    end

    initial begin
        #3000 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
