#include "benchmarks/registry.h"

/**
 * @file
 * sha3: a sponge-construction hash core with a Keccak-style
 * theta/chi/iota permutation over a 25-bit state (5x5 lanes of one
 * bit), an absorb buffer with an overflow flag, and a squeeze stage
 * (size-reduced stand-in for the OpenCores low-throughput Keccak
 * core; same idioms: permutation round implemented with for-loops over
 * bit indices, buffer counters, multi-phase FSM).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeSha3Project()
{
    ProjectSpec p;
    p.name = "sha3";
    p.description = "Cryptographic hash function";
    p.dutModule = "sha3_core";
    p.tbModule = "sha3_core_tb";
    p.verifyModule = "sha3_core_vtb";

    p.goldenSource = R"(
module sha3_core (clk, rst, in_valid, data_in,
                  hash_out, out_valid, buffer_full);
    input clk;
    input rst;
    input in_valid;
    input [7:0] data_in;
    output [24:0] hash_out;
    output out_valid;
    output buffer_full;
    reg out_valid;
    reg buffer_full;

    parameter ABSORB     = 2'd0;
    parameter PERMUTE    = 2'd1;
    parameter SQUEEZE    = 2'd2;
    parameter BUF_MAX    = 4'd8;
    parameter NUM_ROUNDS = 4'd8;

    reg [1:0] phase;
    reg [24:0] state;
    reg [24:0] hash_reg;
    reg [3:0] round;
    reg [3:0] buf_cnt;

    // Keccak-style round function: theta diffusion, chi nonlinearity,
    // iota round-constant injection, computed combinationally.
    reg [24:0] theta;
    reg [24:0] chi;
    reg [24:0] next_state;
    integer i;

    always @(state or round)
    begin : ROUND_FUNC
        for (i = 0; i < 25; i = i + 1) begin
            theta[i] = state[i] ^ state[(i + 5) % 25]
                                ^ state[(i + 20) % 25];
        end
        for (i = 0; i < 25; i = i + 1) begin
            chi[i] = theta[i] ^ (~theta[(i + 1) % 25]
                                 & theta[(i + 2) % 25]);
        end
        next_state = chi ^ {21'b0, round};
    end

    // The squeeze output is exposed on a wire via a continuous
    // assignment (byte-reversed presentation of the state).
    wire [24:0] hash_swizzle;
    assign hash_swizzle = {hash_reg[7:0], hash_reg[15:8],
                           hash_reg[23:16], hash_reg[24]};
    assign hash_out = hash_swizzle;

    always @(posedge clk)
    begin : SPONGE
        if (rst == 1'b1) begin
            phase <= ABSORB;
            state <= 25'h0000000;
            hash_reg <= 25'h0000000;
            round <= 4'd0;
            buf_cnt <= 4'd0;
            out_valid <= 1'b0;
            buffer_full <= 1'b0;
        end
        else begin
            case (phase)
                ABSORB : begin
                    out_valid <= 1'b0;
                    if (in_valid == 1'b1) begin
                        state <= state ^ ({17'b0, data_in} << buf_cnt);
                        if (buf_cnt == BUF_MAX - 1) begin
                            buffer_full <= 1'b1;
                            round <= 4'd0;
                            phase <= PERMUTE;
                        end
                        else begin
                            buf_cnt <= buf_cnt + 4'd1;
                        end
                    end
                end
                PERMUTE : begin
                    buffer_full <= 1'b0;
                    buf_cnt <= 4'd0;
                    state <= next_state;
                    if (round == NUM_ROUNDS - 1) begin
                        phase <= SQUEEZE;
                    end
                    else begin
                        round <= round + 4'd1;
                    end
                end
                SQUEEZE : begin
                    hash_reg <= state;
                    out_valid <= 1'b1;
                    phase <= ABSORB;
                end
                default : begin
                    phase <= ABSORB;
                end
            endcase
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module sha3_core_tb;
    reg clk;
    reg rst;
    reg in_valid;
    reg [7:0] data_in;
    wire [24:0] hash_out;
    wire out_valid;
    wire buffer_full;
    integer i;

    sha3_core dut (.clk(clk), .rst(rst), .in_valid(in_valid),
                   .data_in(data_in), .hash_out(hash_out),
                   .out_valid(out_valid),
                   .buffer_full(buffer_full));

    initial begin
        clk = 0;
        rst = 0;
        in_valid = 0;
        data_in = 8'h00;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        // Absorb one 8-byte message.
        in_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 8'h41 + i[7:0];
            @(negedge clk);
        end
        in_valid = 0;
        wait (out_valid == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #1200 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module sha3_core_vtb;
    reg clk;
    reg rst;
    reg in_valid;
    reg [7:0] data_in;
    wire [24:0] hash_out;
    wire out_valid;
    wire buffer_full;
    integer i;

    sha3_core dut (.clk(clk), .rst(rst), .in_valid(in_valid),
                   .data_in(data_in), .hash_out(hash_out),
                   .out_valid(out_valid),
                   .buffer_full(buffer_full));

    initial begin
        clk = 0;
        rst = 0;
        in_valid = 0;
        data_in = 8'h00;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst = 1;
        repeat (2) @(negedge clk);
        rst = 0;
        @(negedge clk);
        // First message: a different pattern, with a gap in in_valid
        // part way through the absorb phase.
        in_valid = 1;
        for (i = 0; i < 4; i = i + 1) begin
            data_in = 8'hf0 ^ i[7:0];
            @(negedge clk);
        end
        in_valid = 0;
        repeat (2) @(negedge clk);
        in_valid = 1;
        for (i = 4; i < 8; i = i + 1) begin
            data_in = 8'h0f + i[7:0];
            @(negedge clk);
        end
        in_valid = 0;
        wait (out_valid == 1'b1);
        repeat (2) @(negedge clk);
        // Second message hashed back-to-back.
        in_valid = 1;
        for (i = 0; i < 8; i = i + 1) begin
            data_in = 8'h99 - i[7:0];
            @(negedge clk);
        end
        in_valid = 0;
        wait (out_valid == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #2500 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
