#include "benchmarks/registry.h"

/**
 * @file
 * The six small course-style projects of Table 2 (this file holds five
 * of them; fsm_full lives in projects_fsm.cc).
 */

namespace cirfix::bench {

using core::ProjectSpec;

// --------------------------------------------------------------------
// decoder_3_to_8: 3-to-8 decoder with enable.
// --------------------------------------------------------------------

ProjectSpec
makeDecoderProject()
{
    ProjectSpec p;
    p.name = "decoder_3_to_8";
    p.description = "3-to-8 decoder";
    p.dutModule = "decoder_3_to_8";
    p.tbModule = "decoder_3_to_8_tb";
    p.verifyModule = "decoder_3_to_8_vtb";

    p.goldenSource = R"(
module decoder_3_to_8 (en, a, y);
    input en;
    input [2:0] a;
    output [7:0] y;
    reg [7:0] y;

    // One-hot decode of the select lines, gated by enable.
    always @(en or a)
    begin : DECODE
        if (en == 1'b1) begin
            case (a)
                3'b000 : y = 8'b00000001;
                3'b001 : y = 8'b00000010;
                3'b010 : y = 8'b00000100;
                3'b011 : y = 8'b00001000;
                3'b100 : y = 8'b00010000;
                3'b101 : y = 8'b00100000;
                3'b110 : y = 8'b01000000;
                3'b111 : y = 8'b10000000;
            endcase
        end
        else begin
            y = 8'b00000000;
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module decoder_3_to_8_tb;
    reg clk;
    reg en;
    reg [2:0] a;
    wire [7:0] y;
    integer i;

    decoder_3_to_8 dut (.en(en), .a(a), .y(y));

    always #5 clk = !clk;

    initial begin
        clk = 0;
        en = 0;
        a = 3'b000;
        @(negedge clk);
        en = 1;
        for (i = 0; i < 8; i = i + 1) begin
            a = i[2:0];
            @(negedge clk);
        end
        en = 0;
        @(negedge clk);
        @(negedge clk);
        #2 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module decoder_3_to_8_vtb;
    reg clk;
    reg en;
    reg [2:0] a;
    wire [7:0] y;
    integer i;

    decoder_3_to_8 dut (.en(en), .a(a), .y(y));

    always #5 clk = !clk;

    initial begin
        clk = 0;
        en = 0;
        a = 3'b101;
        @(negedge clk);
        // Sweep in reverse order, toggling enable between codes.
        for (i = 0; i < 8; i = i + 1) begin
            en = 1;
            a = 3'b111 - i[2:0];
            @(negedge clk);
            en = 0;
            @(negedge clk);
        end
        // Revisit a few codes with enable held.
        en = 1;
        a = 3'b011;
        @(negedge clk);
        a = 3'b110;
        @(negedge clk);
        a = 3'b000;
        @(negedge clk);
        en = 0;
        @(negedge clk);
        #2 $finish;
    end
endmodule
)";
    return p;
}

// --------------------------------------------------------------------
// counter: 4-bit counter with overflow (the paper's motivating
// example, Figure 1).
// --------------------------------------------------------------------

ProjectSpec
makeCounterProject()
{
    ProjectSpec p;
    p.name = "counter";
    p.description = "4-bit counter with overflow";
    p.dutModule = "counter";
    p.tbModule = "counter_tb";
    p.verifyModule = "counter_vtb";

    p.goldenSource = R"(
module counter (clk, reset, enable, counter_out, overflow_out);
    input clk;
    input reset;
    input enable;
    output [3:0] counter_out;
    output overflow_out;
    reg [3:0] counter_out;
    reg overflow_out;

    // Execute at each rising edge of the clock signal.
    always @(posedge clk)
    begin : COUNTER
        // If reset is active, reset the outputs to 0.
        if (reset == 1'b1) begin
            counter_out <= #1 4'b0000;
            overflow_out <= #1 1'b0;
        end
        // If enable is active, increment the counter.
        else if (enable == 1'b1) begin
            counter_out <= #1 counter_out + 1;
        end
        // If the counter overflows, set overflow_out to 1.
        if (counter_out == 4'b1111) begin
            overflow_out <= #1 1'b1;
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module counter_tb;
    reg clk;
    reg reset;
    reg enable;
    wire [3:0] counter_out;
    wire overflow_out;
    event reset_trigger;
    event reset_done_trigger;
    event terminate_sim;

    counter dut (.clk(clk), .reset(reset), .enable(enable),
                 .counter_out(counter_out),
                 .overflow_out(overflow_out));

    initial begin
        clk = 0;
        reset = 0;
        enable = 0;
    end

    // Set clock signal oscillations.
    always #5 clk = !clk;

    initial begin
        #5;
        forever begin
            @(reset_trigger);
            @(negedge clk);
            reset = 1;
            @(negedge clk);
            reset = 0;
            -> reset_done_trigger;
        end
    end

    initial begin
        #10 -> reset_trigger;
        @(reset_done_trigger);
        @(negedge clk);
        enable = 1;
        repeat (21) begin
            @(negedge clk);
        end
        enable = 0;
        #5 -> terminate_sim;
    end

    initial begin
        @(terminate_sim);
        $finish;
    end
endmodule
)";

    p.verifySource = R"(
module counter_vtb;
    reg clk;
    reg reset;
    reg enable;
    wire [3:0] counter_out;
    wire overflow_out;

    counter dut (.clk(clk), .reset(reset), .enable(enable),
                 .counter_out(counter_out),
                 .overflow_out(overflow_out));

    initial begin
        clk = 0;
        reset = 0;
        enable = 0;
    end

    always #5 clk = !clk;

    initial begin
        // Reset, count past overflow, reset again mid-count, then
        // count with pauses.
        @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        enable = 1;
        repeat (18) @(negedge clk);
        enable = 0;
        repeat (2) @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        enable = 1;
        repeat (7) @(negedge clk);
        enable = 0;
        repeat (2) @(negedge clk);
        enable = 1;
        repeat (14) @(negedge clk);
        enable = 0;
        #3 $finish;
    end
endmodule
)";
    return p;
}

// --------------------------------------------------------------------
// flip_flop: T flip-flop with synchronous reset.
// --------------------------------------------------------------------

ProjectSpec
makeFlipFlopProject()
{
    ProjectSpec p;
    p.name = "flip_flop";
    p.description = "T-flip flop";
    p.dutModule = "flip_flop";
    p.tbModule = "flip_flop_tb";
    p.verifyModule = "flip_flop_vtb";

    p.goldenSource = R"(
module flip_flop (clk, reset, t, q);
    input clk;
    input reset;
    input t;
    output q;
    reg q;

    always @(posedge clk)
    begin : TFF
        if (reset == 1'b1) begin
            q <= 1'b0;
        end
        else begin
            if (t == 1'b1) begin
                q <= !q;
            end
            else begin
                q <= q;
            end
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module flip_flop_tb;
    reg clk;
    reg reset;
    reg t;
    wire q;

    flip_flop dut (.clk(clk), .reset(reset), .t(t), .q(q));

    initial begin
        clk = 0;
        reset = 0;
        t = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        t = 1;
        repeat (5) @(negedge clk);
        t = 0;
        repeat (2) @(negedge clk);
        t = 1;
        repeat (3) @(negedge clk);
        t = 0;
        #3 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module flip_flop_vtb;
    reg clk;
    reg reset;
    reg t;
    wire q;

    flip_flop dut (.clk(clk), .reset(reset), .t(t), .q(q));

    initial begin
        clk = 0;
        reset = 0;
        t = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        // Toggle for an odd number of cycles, reset mid-stream, then
        // alternate hold/toggle.
        t = 1;
        repeat (3) @(negedge clk);
        reset = 1;
        @(negedge clk);
        reset = 0;
        repeat (4) @(negedge clk);
        t = 0;
        @(negedge clk);
        t = 1;
        @(negedge clk);
        t = 0;
        @(negedge clk);
        t = 1;
        repeat (6) @(negedge clk);
        t = 0;
        #3 $finish;
    end
endmodule
)";
    return p;
}

// --------------------------------------------------------------------
// lshift_reg: 8-bit left shift register with serial tap.
// --------------------------------------------------------------------

ProjectSpec
makeLshiftRegProject()
{
    ProjectSpec p;
    p.name = "lshift_reg";
    p.description = "8-bit left shift register";
    p.dutModule = "lshift_reg";
    p.tbModule = "lshift_reg_tb";
    p.verifyModule = "lshift_reg_vtb";

    p.goldenSource = R"(
module lshift_reg (clk, rstn, load_val, load_en, op, serial_out);
    input clk;
    input rstn;
    input [7:0] load_val;
    input load_en;
    output [7:0] op;
    output serial_out;
    reg [7:0] op;
    reg serial_out;

    // Shift path: load, hold-and-shift, or reset.
    always @(posedge clk)
    begin : SHIFT
        if (rstn == 1'b0) begin
            op <= 8'h00;
        end
        else begin
            if (load_en == 1'b1) begin
                op <= load_val;
            end
            else begin
                op <= op << 1;
            end
        end
    end

    // Serial tap samples the MSB before the shift (non-blocking
    // semantics make both blocks see the pre-edge value).
    always @(posedge clk)
    begin : TAP
        if (rstn == 1'b0) begin
            serial_out <= 1'b0;
        end
        else begin
            serial_out <= op[7];
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module lshift_reg_tb;
    reg clk;
    reg rstn;
    reg [7:0] load_val;
    reg load_en;
    wire [7:0] op;
    wire serial_out;

    lshift_reg dut (.clk(clk), .rstn(rstn), .load_val(load_val),
                    .load_en(load_en), .op(op),
                    .serial_out(serial_out));

    initial begin
        clk = 0;
        rstn = 0;
        load_val = 8'h00;
        load_en = 0;
    end

    always #5 clk = !clk;

    initial begin
        repeat (2) @(negedge clk);
        rstn = 1;
        load_val = 8'hb5;
        load_en = 1;
        @(negedge clk);
        load_en = 0;
        repeat (9) @(negedge clk);
        load_val = 8'h01;
        load_en = 1;
        @(negedge clk);
        load_en = 0;
        repeat (8) @(negedge clk);
        #3 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module lshift_reg_vtb;
    reg clk;
    reg rstn;
    reg [7:0] load_val;
    reg load_en;
    wire [7:0] op;
    wire serial_out;

    lshift_reg dut (.clk(clk), .rstn(rstn), .load_val(load_val),
                    .load_en(load_en), .op(op),
                    .serial_out(serial_out));

    initial begin
        clk = 0;
        rstn = 0;
        load_val = 8'h00;
        load_en = 0;
    end

    always #5 clk = !clk;

    initial begin
        repeat (2) @(negedge clk);
        rstn = 1;
        // Load a walking pattern, shift fully out, reload mid-shift,
        // and exercise reset between loads.
        load_val = 8'hff;
        load_en = 1;
        @(negedge clk);
        load_en = 0;
        repeat (4) @(negedge clk);
        load_val = 8'h3c;
        load_en = 1;
        @(negedge clk);
        load_en = 0;
        repeat (5) @(negedge clk);
        rstn = 0;
        repeat (2) @(negedge clk);
        rstn = 1;
        load_val = 8'h81;
        load_en = 1;
        @(negedge clk);
        load_en = 0;
        repeat (10) @(negedge clk);
        #3 $finish;
    end
endmodule
)";
    return p;
}

// --------------------------------------------------------------------
// mux_4_1: 4-to-1 multiplexer over 4-bit data.
// --------------------------------------------------------------------

ProjectSpec
makeMux41Project()
{
    ProjectSpec p;
    p.name = "mux_4_1";
    p.description = "4-to-1 multiplexer";
    p.dutModule = "mux_4_1";
    p.tbModule = "mux_4_1_tb";
    p.verifyModule = "mux_4_1_vtb";

    p.goldenSource = R"(
module mux_4_1 (in0, in1, in2, in3, sel, out);
    input [3:0] in0;
    input [3:0] in1;
    input [3:0] in2;
    input [3:0] in3;
    input [1:0] sel;
    output [3:0] out;
    reg [3:0] out;

    always @(in0 or in1 or in2 or in3 or sel)
    begin : MUX
        case (sel)
            2'b00 : out = in0;
            2'b01 : out = in1;
            2'b10 : out = in2;
            2'b11 : out = in3;
        endcase
    end
endmodule
)";

    p.testbenchSource = R"(
module mux_4_1_tb;
    reg clk;
    reg [3:0] in0;
    reg [3:0] in1;
    reg [3:0] in2;
    reg [3:0] in3;
    reg [1:0] sel;
    wire [3:0] out;
    integer i;

    mux_4_1 dut (.in0(in0), .in1(in1), .in2(in2), .in3(in3),
                 .sel(sel), .out(out));

    always #5 clk = !clk;

    initial begin
        clk = 0;
        in0 = 4'h1;
        in1 = 4'h2;
        in2 = 4'h4;
        in3 = 4'h8;
        sel = 2'b00;
        @(negedge clk);
        for (i = 0; i < 4; i = i + 1) begin
            sel = i[1:0];
            @(negedge clk);
        end
        in2 = 4'ha;
        sel = 2'b10;
        @(negedge clk);
        sel = 2'b01;
        @(negedge clk);
        #2 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module mux_4_1_vtb;
    reg clk;
    reg [3:0] in0;
    reg [3:0] in1;
    reg [3:0] in2;
    reg [3:0] in3;
    reg [1:0] sel;
    wire [3:0] out;
    integer i;
    integer j;

    mux_4_1 dut (.in0(in0), .in1(in1), .in2(in2), .in3(in3),
                 .sel(sel), .out(out));

    always #5 clk = !clk;

    initial begin
        clk = 0;
        in0 = 4'hf;
        in1 = 4'h0;
        in2 = 4'h5;
        in3 = 4'h3;
        sel = 2'b11;
        @(negedge clk);
        // Full sweep of selects with two different data vectors.
        for (j = 0; j < 2; j = j + 1) begin
            for (i = 0; i < 4; i = i + 1) begin
                sel = 2'b11 - i[1:0];
                @(negedge clk);
            end
            in0 = 4'h9;
            in1 = 4'h6;
            in2 = 4'hc;
            in3 = 4'h7;
        end
        sel = 2'b10;
        @(negedge clk);
        #2 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
