#include "benchmarks/registry.h"

/**
 * @file
 * sdram_controller: a synchronous DRAM controller front end — init
 * sequence (NOP / PRECHARGE / REFRESH countdowns), host interface with
 * busy handshaking, command bus, and a small internal array model
 * (size-reduced stand-in for the OpenCores sdram_controller; the reset
 * block mirrors the signal names of the paper's Figure 3).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeSdramControllerProject()
{
    ProjectSpec p;
    p.name = "sdram_controller";
    p.description = "Synchronous DRAM memory controller";
    p.dutModule = "sdram_controller";
    p.tbModule = "sdram_controller_tb";
    p.verifyModule = "sdram_controller_vtb";

    p.goldenSource = R"(
module sdram_controller (clk, rst_n, haddr, data, rd_enable, wr_enable,
                         rd_data, busy, command, rd_ready);
    input clk;
    input rst_n;
    input [3:0] haddr;
    input [7:0] data;
    input rd_enable;
    input wr_enable;
    output [7:0] rd_data;
    output busy;
    output [2:0] command;
    output rd_ready;
    reg busy;
    reg [2:0] command;
    reg rd_ready;

    parameter HADDR_WIDTH = 4;

    parameter CMD_NOP   = 3'b111;
    parameter CMD_PRE   = 3'b010;
    parameter CMD_REF   = 3'b001;
    parameter CMD_READ  = 3'b101;
    parameter CMD_WRITE = 3'b100;

    parameter INIT_NOP1 = 3'd0;
    parameter INIT_PRE  = 3'd1;
    parameter INIT_REF  = 3'd2;
    parameter IDLE      = 3'd3;
    parameter WRITE_ACT = 3'd4;
    parameter READ_ACT  = 3'd5;
    parameter READ_OUT  = 3'd6;

    reg [2:0] state;
    reg [3:0] state_cnt;
    reg [3:0] haddr_r;
    reg [7:0] rd_data_r;
    reg [7:0] wr_data_r;
    reg [7:0] mem [0:15];

    assign rd_data = rd_data_r;

    always @(posedge clk)
    begin : HOST_IF
        if (!rst_n) begin
            state <= INIT_NOP1;
            command <= CMD_NOP;
            state_cnt <= 4'hf;
            haddr_r <= {HADDR_WIDTH{1'b0}};
            rd_data_r <= 8'h00;
            busy <= 1'b0;
            rd_ready <= 1'b0;
            wr_data_r <= 8'h00;
        end
        else begin
            case (state)
                INIT_NOP1 : begin
                    busy <= 1'b1;
                    command <= CMD_NOP;
                    if (state_cnt == 4'h0) begin
                        state <= INIT_PRE;
                        state_cnt <= 4'h2;
                    end
                    else begin
                        state_cnt <= state_cnt - 4'h1;
                    end
                end
                INIT_PRE : begin
                    command <= CMD_PRE;
                    if (state_cnt == 4'h0) begin
                        state <= INIT_REF;
                        state_cnt <= 4'h3;
                    end
                    else begin
                        state_cnt <= state_cnt - 4'h1;
                    end
                end
                INIT_REF : begin
                    command <= CMD_REF;
                    if (state_cnt == 4'h0) begin
                        state <= IDLE;
                    end
                    else begin
                        state_cnt <= state_cnt - 4'h1;
                    end
                end
                IDLE : begin
                    command <= CMD_NOP;
                    busy <= 1'b0;
                    rd_ready <= 1'b0;
                    if (wr_enable == 1'b1) begin
                        haddr_r <= haddr;
                        wr_data_r <= data;
                        busy <= 1'b1;
                        command <= CMD_WRITE;
                        state <= WRITE_ACT;
                    end
                    else if (rd_enable == 1'b1) begin
                        haddr_r <= haddr;
                        busy <= 1'b1;
                        command <= CMD_READ;
                        state <= READ_ACT;
                    end
                end
                WRITE_ACT : begin
                    mem[haddr_r] <= wr_data_r;
                    command <= CMD_NOP;
                    state <= IDLE;
                end
                READ_ACT : begin
                    rd_data_r <= mem[haddr_r];
                    command <= CMD_NOP;
                    state <= READ_OUT;
                end
                READ_OUT : begin
                    rd_ready <= 1'b1;
                    state <= IDLE;
                end
                default : begin
                    state <= IDLE;
                end
            endcase
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module sdram_controller_tb;
    reg clk;
    reg rst_n;
    reg [3:0] haddr;
    reg [7:0] data;
    reg rd_enable;
    reg wr_enable;
    wire [7:0] rd_data;
    wire busy;
    wire [2:0] command;
    wire rd_ready;

    sdram_controller dut (.clk(clk), .rst_n(rst_n), .haddr(haddr),
                          .data(data), .rd_enable(rd_enable),
                          .wr_enable(wr_enable), .rd_data(rd_data),
                          .busy(busy), .command(command),
                          .rd_ready(rd_ready));

    initial begin
        clk = 0;
        rst_n = 1;
        haddr = 4'h0;
        data = 8'h00;
        rd_enable = 0;
        wr_enable = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst_n = 0;
        repeat (2) @(negedge clk);
        rst_n = 1;
        // Wait out the init sequence (NOP/PRE/REF countdowns).
        repeat (25) @(negedge clk);
        // Write then read back one location.
        haddr = 4'h5;
        data = 8'h5a;
        wr_enable = 1;
        @(negedge clk);
        wr_enable = 0;
        wait (busy == 1'b0);
        @(negedge clk);
        haddr = 4'h5;
        rd_enable = 1;
        @(negedge clk);
        rd_enable = 0;
        wait (rd_ready == 1'b1);
        repeat (3) @(negedge clk);
        $finish;
    end

    initial begin
        #1500 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module sdram_controller_vtb;
    reg clk;
    reg rst_n;
    reg [3:0] haddr;
    reg [7:0] data;
    reg rd_enable;
    reg wr_enable;
    wire [7:0] rd_data;
    wire busy;
    wire [2:0] command;
    wire rd_ready;
    integer i;

    sdram_controller dut (.clk(clk), .rst_n(rst_n), .haddr(haddr),
                          .data(data), .rd_enable(rd_enable),
                          .wr_enable(wr_enable), .rd_data(rd_data),
                          .busy(busy), .command(command),
                          .rd_ready(rd_ready));

    initial begin
        clk = 0;
        rst_n = 1;
        haddr = 4'h0;
        data = 8'h00;
        rd_enable = 0;
        wr_enable = 0;
    end

    always #5 clk = !clk;

    initial begin
        @(negedge clk);
        rst_n = 0;
        repeat (2) @(negedge clk);
        rst_n = 1;
        repeat (25) @(negedge clk);
        // Fill four locations, read them back, then re-reset and
        // check the init sequence repeats.
        for (i = 0; i < 4; i = i + 1) begin
            haddr = i[3:0];
            data = 8'h10 + {4'b0000, i[3:0]};
            wr_enable = 1;
            @(negedge clk);
            wr_enable = 0;
            wait (busy == 1'b0);
            @(negedge clk);
        end
        for (i = 0; i < 4; i = i + 1) begin
            haddr = i[3:0];
            rd_enable = 1;
            @(negedge clk);
            rd_enable = 0;
            wait (rd_ready == 1'b1);
            @(negedge clk);
        end
        rst_n = 0;
        repeat (2) @(negedge clk);
        rst_n = 1;
        repeat (25) @(negedge clk);
        $finish;
    end

    initial begin
        #4000 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
