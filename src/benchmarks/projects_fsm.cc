#include "benchmarks/registry.h"

/**
 * @file
 * fsm_full: a three-requester arbiter in the style of the classic
 * "fsm_full" teaching design — combinational next-state logic plus a
 * sequential output stage whose busy flag lags the grants by one
 * cycle (which is what makes blocking-vs-non-blocking defects
 * externally visible).
 */

namespace cirfix::bench {

using core::ProjectSpec;

ProjectSpec
makeFsmFullProject()
{
    ProjectSpec p;
    p.name = "fsm_full";
    p.description = "Finite state machine";
    p.dutModule = "fsm_full";
    p.tbModule = "fsm_full_tb";
    p.verifyModule = "fsm_full_vtb";

    p.goldenSource = R"(
module fsm_full (clock, reset, req_0, req_1, req_2,
                 gnt_0, gnt_1, gnt_2, busy);
    input clock;
    input reset;
    input req_0;
    input req_1;
    input req_2;
    output gnt_0;
    output gnt_1;
    output gnt_2;
    output busy;
    reg gnt_0;
    reg gnt_1;
    reg gnt_2;
    reg busy;

    parameter IDLE = 3'b000;
    parameter GNT0 = 3'b001;
    parameter GNT1 = 3'b010;
    parameter GNT2 = 3'b100;

    reg [2:0] state;
    reg [2:0] next_state;

    // Combinational next-state logic: fixed priority req_0 > req_1 >
    // req_2; a grant is held for as long as its request stays up.
    always @(state or req_0 or req_1 or req_2)
    begin : NEXT_STATE_LOGIC
        case (state)
            IDLE : begin
                if (req_0 == 1'b1) begin
                    next_state = GNT0;
                end
                else if (req_1 == 1'b1) begin
                    next_state = GNT1;
                end
                else if (req_2 == 1'b1) begin
                    next_state = GNT2;
                end
                else begin
                    next_state = IDLE;
                end
            end
            GNT0 : begin
                if (req_0 == 1'b1) begin
                    next_state = GNT0;
                end
                else begin
                    next_state = IDLE;
                end
            end
            GNT1 : begin
                if (req_1 == 1'b1) begin
                    next_state = GNT1;
                end
                else begin
                    next_state = IDLE;
                end
            end
            GNT2 : begin
                if (req_2 == 1'b1) begin
                    next_state = GNT2;
                end
                else begin
                    next_state = IDLE;
                end
            end
            default : begin
                next_state = IDLE;
            end
        endcase
    end

    // Sequential stage. busy intentionally reflects the *previous*
    // state (non-blocking read of state before its update commits).
    always @(posedge clock)
    begin : SEQ
        if (reset == 1'b1) begin
            state <= IDLE;
            gnt_0 <= 1'b0;
            gnt_1 <= 1'b0;
            gnt_2 <= 1'b0;
            busy <= 1'b0;
        end
        else begin
            state <= next_state;
            gnt_0 <= (next_state == GNT0);
            gnt_1 <= (next_state == GNT1);
            gnt_2 <= (next_state == GNT2);
            busy <= (state != IDLE);
        end
    end
endmodule
)";

    p.testbenchSource = R"(
module fsm_full_tb;
    reg clock;
    reg reset;
    reg req_0;
    reg req_1;
    reg req_2;
    wire gnt_0;
    wire gnt_1;
    wire gnt_2;
    wire busy;

    fsm_full dut (.clock(clock), .reset(reset), .req_0(req_0),
                  .req_1(req_1), .req_2(req_2), .gnt_0(gnt_0),
                  .gnt_1(gnt_1), .gnt_2(gnt_2), .busy(busy));

    initial begin
        clock = 0;
        reset = 0;
        req_0 = 0;
        req_1 = 0;
        req_2 = 0;
    end

    always #5 clock = !clock;

    initial begin
        @(negedge clock);
        reset = 1;
        @(negedge clock);
        reset = 0;
        @(negedge clock);
        req_0 = 1;
        repeat (3) @(negedge clock);
        req_0 = 0;
        repeat (2) @(negedge clock);
        req_1 = 1;
        repeat (3) @(negedge clock);
        req_1 = 0;
        repeat (2) @(negedge clock);
        req_2 = 1;
        repeat (3) @(negedge clock);
        req_2 = 0;
        repeat (2) @(negedge clock);
        #3 $finish;
    end
endmodule
)";

    p.verifySource = R"(
module fsm_full_vtb;
    reg clock;
    reg reset;
    reg req_0;
    reg req_1;
    reg req_2;
    wire gnt_0;
    wire gnt_1;
    wire gnt_2;
    wire busy;

    fsm_full dut (.clock(clock), .reset(reset), .req_0(req_0),
                  .req_1(req_1), .req_2(req_2), .gnt_0(gnt_0),
                  .gnt_1(gnt_1), .gnt_2(gnt_2), .busy(busy));

    initial begin
        clock = 0;
        reset = 0;
        req_0 = 0;
        req_1 = 0;
        req_2 = 0;
    end

    always #5 clock = !clock;

    initial begin
        @(negedge clock);
        reset = 1;
        @(negedge clock);
        reset = 0;
        // req_2 alone, then overlapping requests (priority check),
        // a reset in the middle of a grant, and back-to-back grants.
        req_2 = 1;
        repeat (3) @(negedge clock);
        req_2 = 0;
        @(negedge clock);
        req_1 = 1;
        req_2 = 1;
        repeat (3) @(negedge clock);
        req_0 = 1;
        repeat (2) @(negedge clock);
        req_1 = 0;
        req_2 = 0;
        repeat (2) @(negedge clock);
        reset = 1;
        @(negedge clock);
        reset = 0;
        repeat (2) @(negedge clock);
        req_0 = 0;
        @(negedge clock);
        req_1 = 1;
        @(negedge clock);
        req_1 = 0;
        req_2 = 1;
        repeat (2) @(negedge clock);
        req_2 = 0;
        repeat (2) @(negedge clock);
        #3 $finish;
    end
endmodule
)";
    return p;
}

} // namespace cirfix::bench
