#include "benchmarks/registry.h"

#include <stdexcept>

namespace cirfix::bench {

using core::ProjectSpec;

const std::vector<ProjectSpec> &
allProjects()
{
    static const std::vector<ProjectSpec> projects = [] {
        std::vector<ProjectSpec> p;
        p.push_back(makeDecoderProject());
        p.push_back(makeCounterProject());
        p.push_back(makeFlipFlopProject());
        p.push_back(makeFsmFullProject());
        p.push_back(makeLshiftRegProject());
        p.push_back(makeMux41Project());
        p.push_back(makeI2cProject());
        p.push_back(makeSha3Project());
        p.push_back(makeTatePairingProject());
        p.push_back(makeReedSolomonProject());
        p.push_back(makeSdramControllerProject());
        return p;
    }();
    return projects;
}

const ProjectSpec &
getProject(const std::string &name)
{
    for (auto &p : allProjects())
        if (p.name == name)
            return p;
    throw std::out_of_range("unknown project: " + name);
}

} // namespace cirfix::bench
