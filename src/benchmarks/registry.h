#pragma once

/**
 * @file
 * The CirFix benchmark suite (paper Section 4.1, Tables 2 and 3).
 *
 * Eleven hardware projects — six small course-style components and
 * five larger OpenCores-style designs (arithmetic, communication,
 * crypto, error correction, memory) — each with a golden
 * implementation, an instrumented repair testbench, and a held-out
 * verification testbench; plus 32 defect scenarios transplanting the
 * defect types of Table 3 into those projects (19 category-1 "easy"
 * and 13 category-2 "hard" defects).
 */

#include <vector>

#include "core/scenario.h"

namespace cirfix::bench {

/** All 11 projects, in Table 2 order. */
const std::vector<core::ProjectSpec> &allProjects();

/** Look up a project by name; throws std::out_of_range if unknown. */
const core::ProjectSpec &getProject(const std::string &name);

/** All 32 defect scenarios, in Table 3 order. */
const std::vector<core::DefectSpec> &allDefects();

/** Look up a defect by id; throws std::out_of_range if unknown. */
const core::DefectSpec &getDefect(const std::string &id);

/** The defects transplanted into one project. */
std::vector<const core::DefectSpec *>
defectsForProject(const std::string &project);

// Individual project factories (one per projects_*.cc file).
core::ProjectSpec makeDecoderProject();
core::ProjectSpec makeCounterProject();
core::ProjectSpec makeFlipFlopProject();
core::ProjectSpec makeFsmFullProject();
core::ProjectSpec makeLshiftRegProject();
core::ProjectSpec makeMux41Project();
core::ProjectSpec makeI2cProject();
core::ProjectSpec makeSha3Project();
core::ProjectSpec makeTatePairingProject();
core::ProjectSpec makeReedSolomonProject();
core::ProjectSpec makeSdramControllerProject();

} // namespace cirfix::bench
